"""Transaction trace record / replay.

Recording a run produces a portable trace (plain dicts, JSON-lines
serialisable) that can be replayed as master traffic later — the
workflow used to archive a scenario, to diff two models transaction by
transaction, or to feed a captured stream back into a different
configuration.  A :class:`TraceSource` binds a trace (inline records or
a JSON-lines path) to a :class:`~repro.traffic.workloads.Workload`, so
captured runs flow through the same ``SystemSpec`` / platform-builder /
sweep machinery as synthetic traffic.

Semantics
---------
A trace is the **offered** per-master traffic, not the raw bus transfer
log: by default the recorder replaces a write-buffer drain transfer
with the posted *original* it replays (``drains="origin"``), so every
record belongs to a real master and the per-master record sets are the
complete streams those masters issued — exactly what a replay needs.
Records land in completion order; within one master that can differ
from issue order (a posted write completes for the master at absorb
time but is only recorded when its drain reaches memory), which is why
:func:`replay_items` re-sorts by ``issued_at``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.ahb.burst import crosses_kb_boundary
from repro.ahb.master import TrafficItem
from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.ahb.types import AccessKind
from repro.errors import TrafficError

#: How :class:`TraceRecorder` archives write-buffer drain transfers:
#: ``"origin"`` records the posted original (complete per-master
#: streams — the replayable default), ``"bus"`` records the drain
#: transfer itself under :data:`~repro.ahb.transaction.
#: WRITE_BUFFER_MASTER` (the raw bus log), ``"skip"`` drops them.
DRAIN_MODES = ("origin", "bus", "skip")

_KINDS = tuple(kind.value for kind in AccessKind)


@dataclass(frozen=True)
class TraceRecord:
    """One archived transaction."""

    master: int
    kind: str
    addr: int
    beats: int
    size_bytes: int
    wrapping: bool
    data: List[int]
    issued_at: int
    granted_at: int
    started_at: int
    finished_at: int
    via_write_buffer: bool
    #: Absolute QoS deadline of the original transaction (``None`` for
    #: non-real-time traffic); replay restores it so the AHB+ urgency
    #: logic sees the same constraint.  Defaults keep pre-deadline
    #: traces loadable.
    deadline: Optional[int] = None
    #: The transaction's engine-assigned uid.  Within one capture a
    #: master's uids increase in *issue* order (agents create their
    #: transactions sequentially), so it breaks ``issued_at`` ties —
    #: e.g. a write absorbed in the same cycle its successor issues.
    #: Not comparable across captures; ``None`` on legacy traces.
    uid: Optional[int] = None
    #: Final AHB response code (:class:`~repro.ahb.types.HResp` value):
    #: ``0`` OKAY, ``1`` ERROR (slave error or retry budget exhausted),
    #: ``2`` RETRY.  Part of the functional outcome a replay must
    #: reproduce.  Defaults keep pre-fault traces loadable.
    resp: int = 0
    #: Seeded fault plan the injector stamped on the transaction (one
    #: non-OKAY response code per bus presentation).  Replay restores
    #: it verbatim so the archived failure re-occurs deterministically,
    #: independent of the workload's fault spec.
    fault_plan: Tuple[int, ...] = ()
    #: RETRY budget before the master aborts (restored on replay).
    retry_limit: int = 4

    @classmethod
    def from_transaction(cls, txn: Transaction) -> "TraceRecord":
        return cls(
            master=txn.master,
            kind=txn.kind.value,
            addr=txn.addr,
            beats=txn.beats,
            size_bytes=txn.size_bytes,
            wrapping=txn.wrapping,
            data=list(txn.data),
            issued_at=txn.issued_at,
            granted_at=txn.granted_at,
            started_at=txn.started_at,
            finished_at=txn.finished_at,
            via_write_buffer=txn.via_write_buffer,
            deadline=txn.deadline,
            uid=txn.uid,
            resp=txn.resp,
            fault_plan=tuple(txn.fault_plan),
            retry_limit=txn.retry_limit,
        )


_RECORD_FIELDS = {f.name for f in fields(TraceRecord)}
_REQUIRED_FIELDS = _RECORD_FIELDS - {
    "deadline",
    "uid",
    "resp",
    "fault_plan",
    "retry_limit",
}
#: ``(name, may_be_negative)`` — the cycle stamps use ``-1`` for
#: "never happened" (an absorbed write was never granted the bus).
_INT_FIELDS = (
    ("master", False),
    ("addr", False),
    ("beats", False),
    ("size_bytes", False),
    ("issued_at", True),
    ("granted_at", True),
    ("started_at", True),
    ("finished_at", True),
)
_BOOL_FIELDS = ("wrapping", "via_write_buffer")


def _is_int(value: object) -> bool:
    # bool is an int subclass; a trace with "addr": true is malformed.
    return isinstance(value, int) and not isinstance(value, bool)


def record_from_payload(
    payload: object, where: str = "trace record"
) -> TraceRecord:
    """Build a validated :class:`TraceRecord` from a plain mapping.

    Every field is checked for type *and* value (a bad ``kind`` string
    or a string ``data`` payload must fail here, at load time, not as a
    raw ``ValueError`` mid-replay), raising :class:`TrafficError`
    prefixed with *where* (the caller supplies e.g. the line number).
    """
    if not isinstance(payload, Mapping):
        raise TrafficError(f"{where}: expected an object, got {type(payload).__name__}")
    unknown = set(payload) - _RECORD_FIELDS
    if unknown:
        raise TrafficError(f"{where}: unknown fields {sorted(unknown)}")
    missing = _REQUIRED_FIELDS - set(payload)
    if missing:
        raise TrafficError(f"{where}: missing fields {sorted(missing)}")
    kind = payload["kind"]
    if kind not in _KINDS:
        raise TrafficError(
            f"{where}: bad access kind {kind!r}; expected one of {_KINDS}"
        )
    for name, signed in _INT_FIELDS:
        value = payload[name]
        floor = -1 if signed else 0  # -1 is the only "never happened"
        if not _is_int(value) or value < floor:
            raise TrafficError(
                f"{where}: field {name!r} must be an integer >= {floor}, "
                f"got {value!r}"
            )
    for name in _BOOL_FIELDS:
        if not isinstance(payload[name], bool):
            raise TrafficError(
                f"{where}: field {name!r} must be a boolean, "
                f"got {payload[name]!r}"
            )
    data = payload["data"]
    if not isinstance(data, (list, tuple)) or not all(
        _is_int(word) for word in data
    ):
        raise TrafficError(
            f"{where}: field 'data' must be a list of integers, got {data!r}"
        )
    deadline = payload.get("deadline")
    if deadline is not None and (not _is_int(deadline) or deadline < 0):
        raise TrafficError(
            f"{where}: field 'deadline' must be null or a non-negative "
            f"integer, got {deadline!r}"
        )
    uid = payload.get("uid")
    if uid is not None and (not _is_int(uid) or uid < 0):
        raise TrafficError(
            f"{where}: field 'uid' must be null or a non-negative "
            f"integer, got {uid!r}"
        )
    resp = payload.get("resp", 0)
    if not _is_int(resp) or not 0 <= resp <= 3:
        raise TrafficError(
            f"{where}: field 'resp' must be an HResp code (0..3), "
            f"got {resp!r}"
        )
    fault_plan = payload.get("fault_plan", ())
    if not isinstance(fault_plan, (list, tuple)) or not all(
        _is_int(code) and code in (1, 2) for code in fault_plan
    ):
        raise TrafficError(
            f"{where}: field 'fault_plan' must be a list of ERROR(1)/"
            f"RETRY(2) codes, got {fault_plan!r}"
        )
    retry_limit = payload.get("retry_limit", 4)
    if not _is_int(retry_limit) or retry_limit < 0:
        raise TrafficError(
            f"{where}: field 'retry_limit' must be a non-negative "
            f"integer, got {retry_limit!r}"
        )
    beats = payload["beats"]
    size_bytes = payload["size_bytes"]
    if beats < 1:
        raise TrafficError(f"{where}: beats must be >= 1, got {beats}")
    # Mirror Transaction.__post_init__'s protocol constraints so a bad
    # record fails here, with the line number, as TrafficError — not as
    # a ProtocolError mid-replay (possibly inside a sweep worker).
    if size_bytes < 1 or size_bytes & (size_bytes - 1):
        raise TrafficError(
            f"{where}: size_bytes must be a power of two, got {size_bytes}"
        )
    if payload["addr"] % size_bytes:
        raise TrafficError(
            f"{where}: address {payload['addr']:#x} not aligned to the "
            f"{size_bytes}-byte beat size"
        )
    if payload["wrapping"] and beats not in (4, 8, 16):
        raise TrafficError(
            f"{where}: wrapping bursts must be 4/8/16 beats, got {beats}"
        )
    if not payload["wrapping"] and crosses_kb_boundary(
        payload["addr"], beats, size_bytes
    ):
        raise TrafficError(
            f"{where}: the {beats}-beat burst at {payload['addr']:#x} "
            f"crosses the AHB 1 KB boundary"
        )
    if kind == AccessKind.WRITE.value and data and len(data) != beats:
        raise TrafficError(
            f"{where}: write supplies {len(data)} beats of data but "
            f"declares {beats} beats"
        )
    return TraceRecord(
        master=payload["master"],
        kind=kind,
        addr=payload["addr"],
        beats=payload["beats"],
        size_bytes=payload["size_bytes"],
        wrapping=payload["wrapping"],
        data=list(data),
        issued_at=payload["issued_at"],
        granted_at=payload["granted_at"],
        started_at=payload["started_at"],
        finished_at=payload["finished_at"],
        via_write_buffer=payload["via_write_buffer"],
        deadline=deadline,
        uid=uid,
        resp=resp,
        fault_plan=tuple(fault_plan),
        retry_limit=retry_limit,
    )


class TraceRecorder:
    """Bus observer that archives every completed transaction.

    The observer arguments — the grant/start/finish cycles the bus
    engine itself computed — are the source of truth for the recorded
    timestamps.  The transaction's own stamped fields must agree with
    them wherever both exist (a mismatch means an engine carried stale
    bookkeeping and the trace would lie about timing), so the recorder
    asserts consistency instead of silently trusting either side.

    ``drains`` selects what a write-buffer drain transfer contributes
    (see :data:`DRAIN_MODES`).  The default, ``"origin"``, archives the
    posted original — the trace then holds every transaction each
    master *issued*, which is what trace-backed workloads replay.
    """

    def __init__(self, drains: str = "origin") -> None:
        if drains not in DRAIN_MODES:
            raise TrafficError(
                f"unknown drain mode {drains!r}; choose from {DRAIN_MODES}"
            )
        self.drains = drains
        self.records: List[TraceRecord] = []

    def __call__(
        self, txn: Transaction, grant: int, start: int, finish: int
    ) -> None:
        """Observer hook matching the bus observer signature."""
        for name, observed in (
            ("granted_at", grant),
            ("started_at", start),
            ("finished_at", finish),
        ):
            stamped = getattr(txn, name)
            if stamped >= 0 and stamped != observed:
                raise TrafficError(
                    f"transaction {txn.uid} (master {txn.master}): stamped "
                    f"{name}={stamped} disagrees with the bus observer's "
                    f"{observed}; the engine delivered stale timestamps"
                )
        if txn.master == WRITE_BUFFER_MASTER and txn.origin is not None:
            if self.drains == "skip":
                return
            if self.drains == "origin":
                # The posted original carries the master-side timing:
                # issued when the master issued it, finished at absorb
                # time, never granted the bus itself (-1 stamps).
                self.records.append(TraceRecord.from_transaction(txn.origin))
                return
        self.records.append(
            replace(
                TraceRecord.from_transaction(txn),
                granted_at=grant,
                started_at=start,
                finished_at=finish,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def by_master(self) -> Dict[int, List[TraceRecord]]:
        """Records grouped by issuing master, in completion order.

        Completion order within one master may differ from issue order
        when posted writes are involved (their ``"origin"`` records
        only appear once the drain reaches memory); replay re-sorts by
        ``issued_at``, and so should any order-sensitive consumer.
        """
        return group_by_master(self.records)

    def dump(self, stream: TextIO) -> int:
        """Write JSON-lines; returns the record count."""
        return dump_trace(self.records, stream)

    def save(self, path: Union[str, "object"]) -> int:
        """Write the records to *path* as JSON-lines."""
        return save_trace(self.records, path)


# -- serialisation ---------------------------------------------------------------


def dump_trace(records: Iterable[TraceRecord], stream: TextIO) -> int:
    """Write *records* to *stream* as JSON-lines; returns the count."""
    count = 0
    for record in records:
        stream.write(json.dumps(asdict(record)) + "\n")
        count += 1
    return count


def save_trace(records: Iterable[TraceRecord], path) -> int:
    """Write *records* to the file at *path* as JSON-lines."""
    try:
        with open(path, "w", encoding="utf-8") as stream:
            return dump_trace(records, stream)
    except OSError as exc:
        raise TrafficError(f"cannot write trace {path!r}: {exc}") from exc


def load_trace(stream: TextIO) -> List[TraceRecord]:
    """Read a JSON-lines trace produced by :meth:`TraceRecorder.dump`.

    Every line is fully validated (field presence, types, value ranges,
    access-kind strings); any malformation raises :class:`TrafficError`
    naming the offending line.  Duplicate uids are rejected too — the
    uid is the issue-order tie-breaker, and a trace that reuses one
    (e.g. two captures concatenated by accident) would replay in an
    order the capture never had.
    """
    records = []
    seen_uids: Dict[int, int] = {}
    for line_no, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TrafficError(
                f"malformed trace line {line_no}: {exc}"
            ) from exc
        record = record_from_payload(payload, f"trace line {line_no}")
        if record.uid is not None:
            first = seen_uids.setdefault(record.uid, line_no)
            if first != line_no:
                raise TrafficError(
                    f"trace line {line_no}: duplicate uid {record.uid} "
                    f"(first seen on line {first})"
                )
        records.append(record)
    return records


def load_trace_file(path) -> List[TraceRecord]:
    """Read a JSON-lines trace from the file at *path*."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return load_trace(stream)
    except OSError as exc:
        raise TrafficError(f"cannot read trace {path!r}: {exc}") from exc


# -- replay ----------------------------------------------------------------------


def _issue_order_key(record: TraceRecord) -> Tuple[int, int]:
    # Only valid when every record carries a uid; sort_issue_order is
    # the public, mixed-stream-safe entry point.
    return (record.issued_at, record.uid if record.uid is not None else -1)


def sort_issue_order(records: List[TraceRecord]) -> List[TraceRecord]:
    """Sort one master's records into offered order, in place.

    ``issued_at`` can tie within one master — a posted write absorbed
    in the very cycle its successor issues shares the cycle stamp — so
    the capture's per-master-monotonic ``uid`` breaks the tie.  The
    uid applies only when every record carries one: a stream mixing
    legacy (uid-less) and fresh records would otherwise sort the
    legacy records ahead of same-cycle peers arbitrarily, so there the
    stable ``issued_at``-only sort preserves input order.
    """
    if all(record.uid is not None for record in records):
        records.sort(key=_issue_order_key)
    else:
        records.sort(key=lambda record: record.issued_at)
    return records


def replay_items(
    records: Iterable[TraceRecord],
    master: int,
    preserve_issue_times: bool = True,
) -> List[TrafficItem]:
    """Convert archived records of one master back into traffic items.

    Records are re-sorted by ``issued_at`` first: traces archive in
    completion order, and a posted write's record lands only when its
    drain finishes — after later non-posted transactions of the same
    master.  Feeding that raw order to the closed-loop master would
    silently collapse the out-of-order item onto the previous finish
    (issue = ``max(prev_finish + think, not_before)``), reordering the
    replayed stream relative to the capture.

    With ``preserve_issue_times`` the original issue cycles become
    ``not_before`` constraints — open-loop replay on a faster system,
    degrading gracefully to back-to-back closed-loop on a slower one
    (the master never issues before the previous item finished).
    Without it the replay is purely closed-loop with zero think time.
    Recorded QoS deadlines are restored as absolute deadlines.
    """
    mine = sort_issue_order(
        [record for record in records if record.master == master]
    )
    items: List[TrafficItem] = []
    for record in mine:
        if record.kind not in _KINDS:
            raise TrafficError(
                f"record for master {master} has bad access kind "
                f"{record.kind!r}; expected one of {_KINDS}"
            )
        txn = Transaction(
            master=master,
            kind=AccessKind(record.kind),
            addr=record.addr,
            beats=record.beats,
            size_bytes=record.size_bytes,
            wrapping=record.wrapping,
            # Replay offers write payloads only; read data is produced
            # by the slave, and carrying the captured words along would
            # mask a functional divergence the replay should expose.
            data=list(record.data) if record.kind == AccessKind.WRITE.value else [],
            # Restore the archived fault plan verbatim (the injector
            # leaves pre-stamped plans alone), so the captured
            # ERROR/RETRY sequence re-occurs on replay.
            fault_plan=tuple(record.fault_plan),
            retry_limit=record.retry_limit,
        )
        items.append(
            TrafficItem(
                txn=txn,
                think_cycles=0,
                not_before=record.issued_at if preserve_issue_times else None,
                absolute_deadline=record.deadline,
            )
        )
    return items


def group_by_master(
    records: Iterable[TraceRecord], sort: bool = False
) -> Dict[int, List[TraceRecord]]:
    """Records grouped by master; ``sort`` restores issue order."""
    grouped: Dict[int, List[TraceRecord]] = {}
    for record in records:
        grouped.setdefault(record.master, []).append(record)
    if sort:
        for stream in grouped.values():
            sort_issue_order(stream)
    return grouped


def trace_masters(records: Iterable[TraceRecord]) -> Tuple[int, ...]:
    """Sorted real master indices present in *records*.

    Drain records kept by a ``drains="bus"`` recorder (master
    :data:`~repro.ahb.transaction.WRITE_BUFFER_MASTER`) are not
    replayable masters and are excluded.
    """
    return tuple(
        sorted(
            {
                record.master
                for record in records
                if record.master != WRITE_BUFFER_MASTER
            }
        )
    )


# -- transforms ------------------------------------------------------------------


def _scale_stamp(value: int, factor: float) -> int:
    return value if value < 0 else int(round(value * factor))


def time_scale(
    records: Iterable[TraceRecord], factor: float
) -> List[TraceRecord]:
    """Scale every cycle stamp (and deadline) by *factor*.

    Stretches (> 1) or compresses (< 1) the offered arrival process —
    e.g. replaying a capture against a slower memory without piling
    every request onto the same cycle.  ``-1`` ("never happened")
    stamps pass through untouched.
    """
    if factor <= 0:
        raise TrafficError(f"time-scale factor must be positive, got {factor}")
    return [
        replace(
            record,
            issued_at=_scale_stamp(record.issued_at, factor),
            granted_at=_scale_stamp(record.granted_at, factor),
            started_at=_scale_stamp(record.started_at, factor),
            finished_at=_scale_stamp(record.finished_at, factor),
            deadline=(
                None
                if record.deadline is None
                else _scale_stamp(record.deadline, factor)
            ),
        )
        for record in records
    ]


def remap_addresses(
    records: Iterable[TraceRecord], offset: int
) -> List[TraceRecord]:
    """Shift every address by *offset* bytes (retarget a memory window).

    The shift must keep each burst protocol-legal: beat alignment is
    preserved only for offsets aligned to the record's beat size, and
    an INCR burst may not end up crossing the AHB 1 KB boundary.  Both
    are validated per record, naming the offender.
    """
    out: List[TraceRecord] = []
    for index, record in enumerate(records):
        addr = record.addr + offset
        if addr < 0:
            raise TrafficError(
                f"record {index}: offset {offset:#x} moves address "
                f"{record.addr:#x} below zero"
            )
        if addr % record.size_bytes:
            raise TrafficError(
                f"record {index}: offset {offset:#x} breaks the "
                f"{record.size_bytes}-byte beat alignment of address "
                f"{record.addr:#x}"
            )
        if not record.wrapping and crosses_kb_boundary(
            addr, record.beats, record.size_bytes
        ):
            raise TrafficError(
                f"record {index}: offset {offset:#x} makes the "
                f"{record.beats}-beat burst at {record.addr:#x} cross a "
                f"1 KB boundary"
            )
        out.append(replace(record, addr=addr))
    return out


def remap_masters(
    records: Iterable[TraceRecord], mapping: Mapping[int, int]
) -> List[TraceRecord]:
    """Reassign master indices via *mapping* (unmapped indices pass).

    Used to densify sparse captures or to stack two captures onto
    disjoint index ranges before :func:`merge_traces`.
    """
    for old, new in mapping.items():
        if not _is_int(new) or new < 0:
            raise TrafficError(
                f"master remap {old} -> {new!r}: target must be a "
                f"non-negative integer"
            )
        if new == WRITE_BUFFER_MASTER:
            raise TrafficError(
                f"master remap {old} -> {new}: target is the write "
                f"buffer's pseudo-master index; replay would drop the "
                f"stream"
            )
    return [
        replace(record, master=mapping.get(record.master, record.master))
        for record in records
    ]


def merge_traces(
    *traces: Sequence[TraceRecord],
) -> List[TraceRecord]:
    """Merge several traces into one, ordered by issue cycle.

    Traces that share master indices interleave on the issue axis
    (well-defined, but usually you want :func:`remap_masters` first so
    each capture keeps its own masters).
    """
    merged = [record for trace in traces for record in trace]
    merged.sort(key=lambda record: record.issued_at)
    return merged


# -- workload binding ------------------------------------------------------------


@dataclass(frozen=True)
class TraceSource:
    """Where a trace-backed workload finds its records.

    Exactly one of ``path`` (a JSON-lines trace file, loaded lazily —
    the *path* is what pickles to sweep workers, each worker re-reads
    and re-validates the file) or ``records`` (the payload itself,
    shipped inline) must be set.  Either form survives the
    ``SystemSpec`` JSON round-trip and the process-backend pickle.
    """

    path: Optional[str] = None
    records: Tuple[TraceRecord, ...] = ()
    #: Replay knob forwarded to :func:`replay_items`.
    preserve_issue_times: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))
        for index, record in enumerate(self.records):
            if not isinstance(record, TraceRecord):
                raise TrafficError(
                    f"trace source record {index} is "
                    f"{type(record).__name__}, not TraceRecord (build "
                    f"dict payloads via record_from_payload)"
                )
        if (self.path is None) == (len(self.records) == 0):
            raise TrafficError(
                "trace source needs exactly one of path= or records="
            )
        if self.path is not None and not isinstance(self.path, str):
            raise TrafficError(
                f"trace path must be a string, got {type(self.path).__name__}"
            )

    def resolve(self) -> Tuple[TraceRecord, ...]:
        """The concrete record tuple.

        Path sources parse and validate the file once per instance
        (memoized outside the dataclass fields, so equality, hashing of
        the path form, and pickling are unaffected — a worker that
        unpickles the source still re-reads from its own path).
        """
        if self.records:
            return self.records
        cached = self.__dict__.get("_resolved")
        if cached is None:
            cached = tuple(load_trace_file(self.path))
            object.__setattr__(self, "_resolved", cached)
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_resolved", None)  # workers re-read from the path
        return state

    def masters(self) -> Tuple[int, ...]:
        """Sorted real master indices of the resolved trace."""
        return trace_masters(self.resolve())

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (inline sources embed their records)."""
        payload: Dict[str, object] = {
            "preserve_issue_times": self.preserve_issue_times
        }
        if self.path is not None:
            payload["path"] = self.path
        else:
            payload["records"] = [asdict(record) for record in self.records]
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TraceSource":
        """Rebuild a source; inline records re-validate field by field."""
        if not isinstance(data, Mapping):
            raise TrafficError("trace source must be an object")
        unknown = set(data) - {"path", "records", "preserve_issue_times"}
        if unknown:
            raise TrafficError(f"unknown TraceSource fields {sorted(unknown)}")
        raw = data.get("records")
        records: Tuple[TraceRecord, ...] = ()
        if raw is not None:
            if not isinstance(raw, (list, tuple)):
                raise TrafficError("trace source records must be a list")
            records = tuple(
                record_from_payload(payload, f"trace record {index}")
                for index, payload in enumerate(raw)
            )
        return cls(
            path=data.get("path"),  # type: ignore[arg-type]
            records=records,
            preserve_issue_times=bool(data.get("preserve_issue_times", True)),
        )
