"""Synthetic traffic: patterns, seeded generators, workload suites, traces."""

from repro.traffic.generator import generate_items, stream_items
from repro.traffic.patterns import (
    AUDIO,
    CPU,
    DMA,
    MPEG,
    NAMED_PATTERNS,
    RANDOM,
    VIDEO,
    WRITER,
    TrafficPattern,
    named_pattern,
)
from repro.traffic.streams import GENERATION_MODES, TrafficStream
from repro.traffic.trace import TraceRecord, TraceRecorder, load_trace, replay_items
from repro.traffic.workloads import (
    MasterSpec,
    Workload,
    bank_striped_workload,
    saturating_workload,
    single_master_workload,
    table1_pattern_a,
    table1_pattern_b,
    table1_pattern_c,
    table1_workloads,
    write_heavy_workload,
)

__all__ = [
    "AUDIO",
    "CPU",
    "DMA",
    "GENERATION_MODES",
    "MPEG",
    "MasterSpec",
    "NAMED_PATTERNS",
    "RANDOM",
    "TraceRecord",
    "TraceRecorder",
    "TrafficPattern",
    "TrafficStream",
    "VIDEO",
    "WRITER",
    "Workload",
    "bank_striped_workload",
    "generate_items",
    "load_trace",
    "named_pattern",
    "replay_items",
    "saturating_workload",
    "single_master_workload",
    "stream_items",
    "table1_pattern_a",
    "table1_pattern_b",
    "table1_pattern_c",
    "table1_workloads",
    "write_heavy_workload",
]
