"""Seeded traffic generation.

Turns a :class:`~repro.traffic.patterns.TrafficPattern` into a concrete
list of :class:`~repro.ahb.master.TrafficItem` objects.  Generation is a
pure function of ``(pattern, master_index, count, seed)`` — the
identical stream feeds every abstraction level, which is what makes the
paper's RTL-vs-TLM accuracy comparison meaningful.

Bursts are clamped so they never cross an AHB 1 KB boundary and never
leave the pattern's address window, keeping all generated traffic
protocol-legal by construction.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.ahb.burst import KB_BOUNDARY
from repro.ahb.master import TrafficItem
from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.errors import TrafficError
from repro.traffic.patterns import TrafficPattern

_DATA_MASK = 0xFFFF_FFFF


def _legal_beats(addr: int, beats: int, size_bytes: int, span_end: int) -> int:
    """Clamp *beats* to the 1 KB rule and the address window."""
    room_kb = (KB_BOUNDARY - addr % KB_BOUNDARY) // size_bytes
    room_span = (span_end - addr) // size_bytes
    return max(1, min(beats, room_kb, room_span))


def generate_items(
    pattern: TrafficPattern,
    master_index: int,
    count: int,
    seed: int,
) -> List[TrafficItem]:
    """Generate *count* traffic items for one master.

    The returned list is deterministic for a given argument tuple.
    """
    if count < 0:
        raise TrafficError(f"negative transaction count {count}")
    rng = random.Random(f"{seed}/{pattern.name}/{master_index}")
    items: List[TrafficItem] = []
    burst_choices = [beats for beats, _w in pattern.burst_mix]
    burst_weights = [weight for _b, weight in pattern.burst_mix]
    span_end = pattern.base_addr + pattern.addr_span
    next_sequential = pattern.base_addr
    data_mask = (1 << (8 * pattern.size_bytes)) - 1
    for index in range(count):
        beats = rng.choices(burst_choices, weights=burst_weights)[0]
        if rng.random() < pattern.sequential_fraction:
            addr = next_sequential
            if addr + beats * pattern.size_bytes > span_end:
                addr = pattern.base_addr
        else:
            span_words = pattern.addr_span // pattern.size_bytes
            addr = (
                pattern.base_addr
                + rng.randrange(span_words) * pattern.size_bytes
            )
        # Wrapping (cache-line-fill) bursts: the aligned wrap block must
        # lie entirely inside the pattern's window.
        wrapping = False
        if beats in (4, 8, 16) and pattern.wrap_fraction > 0:
            block = beats * pattern.size_bytes
            block_base = (addr // block) * block
            if (
                block_base >= pattern.base_addr
                and block_base + block <= span_end
                and rng.random() < pattern.wrap_fraction
            ):
                wrapping = True
        if not wrapping:
            beats = _legal_beats(addr, beats, pattern.size_bytes, span_end)
        advance = (
            pattern.stride_bytes
            if pattern.stride_bytes is not None
            else beats * pattern.size_bytes
        )
        next_sequential = addr + advance
        if next_sequential >= span_end:
            next_sequential = pattern.base_addr
        is_read = rng.random() < pattern.read_fraction
        txn = Transaction(
            master=master_index,
            kind=AccessKind.READ if is_read else AccessKind.WRITE,
            addr=addr,
            beats=beats,
            size_bytes=pattern.size_bytes,
            wrapping=wrapping,
            data=(
                []
                if is_read
                else [rng.getrandbits(32) & data_mask for _ in range(beats)]
            ),
        )
        think = rng.randint(*pattern.think_range)
        not_before = None
        absolute_deadline = None
        if pattern.period is not None:
            not_before = index * pattern.period
            if pattern.deadline_offset is not None:
                # Streaming deadlines follow the frame schedule, not the
                # (possibly starved) issue instant.
                absolute_deadline = not_before + pattern.deadline_offset
        items.append(
            TrafficItem(
                txn=txn,
                think_cycles=think,
                not_before=not_before,
                deadline_offset=(
                    None if absolute_deadline is not None else pattern.deadline_offset
                ),
                absolute_deadline=absolute_deadline,
            )
        )
    return items


def stream_items(
    pattern: TrafficPattern,
    master_index: int,
    count: int,
    seed: int,
) -> Iterator[TrafficItem]:
    """Generator form of :func:`generate_items` (identical stream)."""
    return iter(generate_items(pattern, master_index, count, seed))
