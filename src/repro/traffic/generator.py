"""Seeded traffic generation.

Turns a :class:`~repro.traffic.patterns.TrafficPattern` into concrete
:class:`~repro.ahb.master.TrafficItem` objects.  Generation is a pure
function of ``(pattern, master_index, count, seed, mode)`` — the
identical stream feeds every abstraction level, which is what makes the
paper's RTL-vs-TLM accuracy comparison meaningful.

The actual draw machinery lives in :mod:`repro.traffic.streams`:

* ``mode="compat"`` (default) replays the original per-item
  ``random.Random`` sequence **bit-for-bit** — golden traces and the
  committed BENCH cycle counts pin this stream; and
* ``mode="stream"`` draws address/burst/think-time/data fields as bulk
  arrays per chunk and materialises items lazily — the fast path for
  large workloads and sharded sweeps.

Bursts are clamped so they never cross an AHB 1 KB boundary and never
leave the pattern's address window, keeping all generated traffic
protocol-legal by construction in both modes.
"""

from __future__ import annotations

from typing import List

from repro.ahb.master import TrafficItem
from repro.traffic.patterns import TrafficPattern
from repro.traffic.streams import GENERATION_MODES, TrafficStream

__all__ = ["GENERATION_MODES", "generate_items", "stream_items"]


def generate_items(
    pattern: TrafficPattern,
    master_index: int,
    count: int,
    seed: int,
    mode: str = "compat",
) -> List[TrafficItem]:
    """Generate *count* traffic items for one master, eagerly.

    The returned list is deterministic for a given argument tuple.
    """
    return TrafficStream(pattern, master_index, count, seed, mode).materialise()


def stream_items(
    pattern: TrafficPattern,
    master_index: int,
    count: int,
    seed: int,
    mode: str = "compat",
) -> TrafficStream:
    """Lazy form of :func:`generate_items` (identical stream per mode).

    The returned :class:`TrafficStream` restarts from the seed on every
    ``iter()``, so one stream can feed several platform builds.
    """
    return TrafficStream(pattern, master_index, count, seed, mode)
