"""Seeded fault injection: error-capable slaves at every engine.

The AHB response codes ``ERROR``/``RETRY`` exist in
:mod:`repro.ahb.types` but the seed codebase never exercised them.  A
:class:`FaultSpec` makes any slave answer a seeded-deterministic subset
of transfers with a non-OKAY response — at the TLM, the plain-AHB
baseline and the pin-accurate RTL alike.

Determinism across engines is the whole point: a fault *plan* (the
sequence of non-OKAY responses a transfer will receive, one per bus
presentation) is stamped onto the :class:`~repro.ahb.transaction.Transaction`
at traffic-build time, derived purely from ``(spec.seed, master index,
per-master ordinal)`` with arithmetic mixing — never from engine state,
timing, or Python ``hash()``.  Every engine therefore observes the
identical ERROR/RETRY sequence for every transaction, and the
cross-engine equivalence harness can keep asserting equality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.ahb.transaction import Transaction
from repro.ahb.types import HResp
from repro.errors import ConfigError

__all__ = ["FaultSpec", "FaultInjector", "plan_for"]


def _mix(seed: int, master: int, ordinal: int) -> int:
    """Mix (seed, master, ordinal) into a 64-bit stream seed.

    Pure arithmetic (splitmix-style) so the value is stable across
    processes and Python versions — ``hash()`` is unusable here.
    """
    x = (
        seed * 0x9E3779B97F4A7C15
        + (master + 1) * 0xBF58476D1CE4E5B9
        + (ordinal + 1) * 0x94D049BB133111EB
    ) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0xD6E8FEB86659FD93) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    return x


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model for a slave or a whole workload.

    Parameters
    ----------
    seed:
        Fault stream seed; independent of the workload's traffic seed so
        the same traffic can be replayed with and without faults.
    error_rate:
        Probability that a matching transfer is answered with ``ERROR``
        on its first presentation (the master aborts it).
    retry_rate:
        Probability that a matching transfer receives a run of ``RETRY``
        responses (length drawn in ``1..max_retries``) before the slave
        lets it through — or the master gives up, if the run exceeds
        ``retry_limit``.
    max_retries:
        Upper bound on the drawn RETRY-run length.
    retry_limit:
        Retry budget stamped on faulted transactions (the master aborts
        after this many RETRYs).
    window_base / window_size:
        Optional address window; only transfers whose first beat falls
        inside it are eligible.  When a spec rides on a
        :class:`~repro.system.spec.SlaveSpec` the platform builder
        defaults the window to that slave's address range.
    """

    seed: int = 0
    error_rate: float = 0.0
    retry_rate: float = 0.0
    max_retries: int = 2
    retry_limit: int = 4
    window_base: Optional[int] = None
    window_size: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigError(f"error_rate must be in [0, 1], got {self.error_rate}")
        if not 0.0 <= self.retry_rate <= 1.0:
            raise ConfigError(f"retry_rate must be in [0, 1], got {self.retry_rate}")
        if self.error_rate + self.retry_rate > 1.0:
            raise ConfigError(
                "error_rate + retry_rate must not exceed 1.0, got "
                f"{self.error_rate + self.retry_rate}"
            )
        if self.max_retries < 1:
            raise ConfigError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.retry_limit < 0:
            raise ConfigError(f"retry_limit must be >= 0, got {self.retry_limit}")
        if (self.window_base is None) != (self.window_size is None):
            raise ConfigError(
                "window_base and window_size must be given together"
            )
        if self.window_size is not None and self.window_size <= 0:
            raise ConfigError(f"window_size must be positive, got {self.window_size}")
        if self.window_base is not None and self.window_base < 0:
            raise ConfigError(f"window_base cannot be negative, got {self.window_base}")

    @property
    def active(self) -> bool:
        """True when the spec can actually fault something."""
        return self.error_rate > 0.0 or self.retry_rate > 0.0

    def matches(self, addr: int) -> bool:
        """Whether a first-beat address is inside the fault window."""
        if self.window_base is None:
            return True
        assert self.window_size is not None
        return self.window_base <= addr < self.window_base + self.window_size

    def windowed(self, base: int, size: int) -> "FaultSpec":
        """Copy with the window defaulted to ``[base, base+size)``."""
        if self.window_base is not None:
            return self
        return replace(self, window_base=base, window_size=size)

    def plan(self, master: int, ordinal: int) -> Tuple[int, ...]:
        """Draw the fault plan for one transaction.

        Depends only on ``(seed, master, ordinal)`` — not on the
        transaction's content or any engine state — so replaying the
        same traffic yields the same plan everywhere.
        """
        rng = random.Random(_mix(self.seed, master, ordinal))
        roll = rng.random()
        if roll < self.error_rate:
            return (int(HResp.ERROR),)
        if roll < self.error_rate + self.retry_rate:
            return (int(HResp.RETRY),) * rng.randint(1, self.max_retries)
        return ()

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown FaultSpec fields: {sorted(unknown)}"
            )
        return cls(**payload)  # type: ignore[arg-type]


def plan_for(
    specs: Sequence[FaultSpec], master: int, ordinal: int, addr: int
) -> Tuple[int, ...]:
    """First matching spec's plan for a transaction (empty when none)."""
    for spec in specs:
        if not spec.active or not spec.matches(addr):
            continue
        plan = spec.plan(master, ordinal)
        if plan:
            return plan
    return ()


class FaultInjector:
    """Re-iterable wrapper stamping fault plans onto a traffic source.

    Wraps any iterable of :class:`~repro.ahb.master.TrafficItem` (a
    list, a generator factory, a lazy
    :class:`~repro.traffic.streams.TrafficStream`) and stamps
    ``fault_plan``/``retry_limit`` onto eligible transactions as they
    stream past.  The per-master ordinal counts *every* item — faulted
    or not — so plans stay aligned with the traffic regardless of the
    address windows in play.

    Transactions that already carry a plan (trace replay of a faulted
    run) are passed through untouched: restored plans win.
    """

    def __init__(
        self,
        items: Iterable,
        master: int,
        specs: Sequence[FaultSpec],
    ) -> None:
        self._items = items
        self._master = master
        self._specs = tuple(specs)

    def __iter__(self) -> Iterator:
        specs = self._specs
        master = self._master
        for ordinal, item in enumerate(self._items):
            txn: Transaction = item.txn
            if not txn.fault_plan:
                plan = plan_for(specs, master, ordinal, txn.addr)
                if plan:
                    txn.fault_plan = plan
                    for spec in specs:
                        if spec.active and spec.matches(txn.addr):
                            txn.retry_limit = spec.retry_limit
                            break
            yield item
