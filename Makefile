PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-baseline bench-tables

test:
	$(PYTHON) -m pytest -x -q

# Run the §4 speed suite and fail on >20% regression vs BENCH_speed.json.
bench:
	$(PYTHON) -m benchmarks.bench_regression

# Re-record BENCH_speed.json's `current` block (preserves the seed block).
bench-baseline:
	$(PYTHON) -m benchmarks.bench_regression --write-baseline

# The full paper-table benchmark suite (slow; pytest-benchmark output).
bench-tables:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q
