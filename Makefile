PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke bench bench-baseline bench-tables sweep-demo

test:
	$(PYTHON) -m pytest -x -q

# Run every script under examples/ to completion (import-and-run guard).
# The same checks run inside the tier-1 flow via tests/test_examples_smoke.py.
smoke:
	$(PYTHON) -m pytest tests/test_examples_smoke.py -q

# Run the §4 speed suite and fail on >20% regression vs BENCH_speed.json.
bench:
	$(PYTHON) -m benchmarks.bench_regression

# Re-record BENCH_speed.json's `current` block (preserves the seed block).
bench-baseline:
	$(PYTHON) -m benchmarks.bench_regression --write-baseline

# The full paper-table benchmark suite (slow; pytest-benchmark output).
bench-tables:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

# Small process-backend sweep (serial-vs-process determinism + speedup).
# Also exercised by the examples smoke test inside tier-1.
sweep-demo:
	$(PYTHON) examples/sweep_demo.py
