PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke lint bench bench-baseline bench-tables bench-trajectory profile sweep-demo trace-demo serve-demo fuzz fuzz-long chaos chaos-long

# Optional bench filter: `make bench MODELS=rtl` measures/gates only
# the named models (space-separated subset of tlm_method
# tlm_single_master rtl).
MODELS ?=

test:
	$(PYTHON) -m pytest -x -q

# Static contract analysis: NET-* netlist rules over every registered
# scenario + the fuzz matrix (sensitivity/wake/driver/phase/loop/dead),
# DET-* determinism rules over src/ (RNG, wall clock, mutable defaults,
# collector picklability, content-key schemas).  Exit 0 means clean
# modulo the documented LINT_WAIVERS.  JSON: `make lint LINT_FLAGS=--format=json`.
# The same run gates tier-1 via tests/test_lint.py.
LINT_FLAGS ?=
lint:
	$(PYTHON) -m repro.lint --scenario all $(LINT_FLAGS)

# Run every script under examples/ to completion (import-and-run guard).
# The same checks run inside the tier-1 flow via tests/test_examples_smoke.py.
smoke:
	$(PYTHON) -m pytest tests/test_examples_smoke.py -q

# Run the §4 speed suite and fail on >20% regression vs BENCH_speed.json
# (prints a per-model delta table; narrow with MODELS=rtl).
bench:
	$(PYTHON) -m benchmarks.bench_regression $(if $(MODELS),--models $(MODELS))

# Re-record BENCH_speed.json's `current` block (preserves the seed block
# and appends this revision to the speed-trajectory history).
bench-baseline:
	$(PYTHON) -m benchmarks.bench_regression --write-baseline

# Print the committed speed trajectory (seed -> milestones -> current).
bench-trajectory:
	$(PYTHON) -m benchmarks.bench_regression --trajectory

# cProfile one run of each bench model; top cumulative functions per
# model (narrow with MODELS=rtl, deepen with TOP=25).
TOP ?= 15
profile:
	$(PYTHON) -m benchmarks.profile_hotspots --top $(TOP) $(if $(MODELS),--models $(MODELS))

# The full paper-table benchmark suite (slow; pytest-benchmark output).
bench-tables:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

# Fixed-seed protocol fuzz (small budget, deterministic): cross-checks
# tlm/plain plus both RTL kernels (event-driven and the full-sweep
# reference) on adversarial scenarios, exits non-zero on any finding.
# The same budget runs inside tier-1 via tests/test_fuzz.py.
fuzz:
	$(PYTHON) -m repro.fuzz --start 0 --count 25

# Long fuzzing campaign: wider seed range, bigger scenarios, repros
# archived under fuzz-repros/ for triage (promote keepers into
# tests/data/repros/ so they become regression tests).
FUZZ_COUNT ?= 500
fuzz-long:
	$(PYTHON) -m repro.fuzz --start 0 --count $(FUZZ_COUNT) \
		--transactions 3 20 --out fuzz-repros

# Fixed-seed chaos campaigns against real sweep-server processes:
# kill -9 mid-batch, torn file tails, dropped connections, poisoned
# points — exits non-zero if any supervision guarantee (no accepted
# work lost, nothing simulated twice, bit-identical recovery, no
# corruption) is violated.  A short smoke of the same harness runs
# inside tier-1 via tests/test_chaos.py.
chaos:
	$(PYTHON) -m repro.fuzz.chaos --start 0 --count 25

# Longer chaos campaign: wider seed range, heavier grids.
CHAOS_COUNT ?= 100
chaos-long:
	$(PYTHON) -m repro.fuzz.chaos --start 0 --count $(CHAOS_COUNT) \
		--transactions 2000 6000 --points 4

# Small process-backend sweep (serial-vs-process determinism + speedup).
# Also exercised by the examples smoke test inside tier-1.
sweep-demo:
	$(PYTHON) examples/sweep_demo.py

# Trace-driven Table-1 playback: capture at TLM, replay at every engine,
# transform, and sweep the capture over a config grid (process backend).
# Also exercised by the examples smoke test inside tier-1.
trace-demo:
	$(PYTHON) examples/trace_replay.py

# Simulation-as-a-service: start a sweep daemon with a persistent
# content-addressed result store, submit a grid twice (second pass is
# 100% cache hits), run a mixed warm/cold grid, restart on the same
# store, and shut down cleanly.  Also in tier-1 via the examples smoke.
serve-demo:
	$(PYTHON) examples/serve_demo.py
