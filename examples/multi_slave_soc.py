#!/usr/bin/env python3
"""Multi-slave SoC: DDR + SRAM scratchpad + APB bridge on one AHB+ bus.

The paper's model is parameterised so one description re-targets across
abstraction levels and configurations.  This example pushes that past
the original four-master/single-DDR platform: a three-region memory map
(DDR main memory, a one-wait-state SRAM scratchpad, an AHB→APB bridge
stub) described once as a :class:`~repro.system.SystemSpec` and
elaborated at *every* engine — method TLM, plain AHB and the
pin-accurate RTL model — exercising the decoder's multi-region routing
on all of them.

Run:  python examples/multi_slave_soc.py
"""

from repro.profiling import BusMonitor
from repro.system import scenario, sweep


def main() -> None:
    spec = scenario("multi-slave-soc", transactions=80)

    print(f"scenario {spec.name!r}: memory map")
    for region in spec.address_map().regions:
        print(
            f"  {region.name:>6}  [{region.base:#010x}, {region.end:#010x})"
            f"  -> slave {region.slave_index}"
        )
    print()

    header = f"{'engine':>14}{'cycles':>10}{'txns':>8}{'util':>8}"
    print(header)
    results = {}
    for point in sweep(
        spec, axis="engine", values=("tlm", "plain", "rtl")
    ):
        platform = point.build()
        monitor = BusMonitor()
        platform.attach(monitor)
        result = platform.run()
        results[point.engine] = (platform, result)
        print(
            f"{point.engine:>14}{result.cycles:>10}{result.transactions:>8}"
            f"{result.utilization:>8.3f}"
        )

    tlm, _ = results["tlm"]
    rtl, _ = results["rtl"]
    assert tlm.ddrc.memory.equal_contents(rtl.ddrc.memory)
    sram_rtl, apb_rtl = rtl.static_slaves
    print()
    print(
        f"functional: DDR images identical across levels; "
        f"SRAM served {sram_rtl.reads}r/{sram_rtl.writes}w, "
        f"APB bridge {apb_rtl.reads}r/{apb_rtl.writes}w at RTL"
    )
    print(
        "one SystemSpec drove all three engines — the decoder routed "
        "every burst to its region without a per-engine platform builder."
    )


if __name__ == "__main__":
    main()
