#!/usr/bin/env python3
"""Extending AHB+: plug a custom arbitration filter into the chain.

The seven-filter arbiter is a pipeline of
:class:`repro.core.filters.ArbitrationFilter` objects; this example
inserts an eighth filter that throttles one misbehaving master to a
bandwidth budget, then compares the victim master's latency with and
without it — the kind of what-if experiment the paper's §3.7
flexibility parameters are for.

Run:  python examples/custom_arbitration.py
"""

from typing import List

from repro.core.filters import ArbitrationContext, Candidate, ArbitrationFilter
from repro.system import PlatformBuilder, paper_topology


class BandwidthThrottle(ArbitrationFilter):
    """Deprioritise a master once it exceeds its byte budget per window."""

    name = "throttle"

    def __init__(self, master: int, budget_bytes: int, window: int = 2048) -> None:
        super().__init__()
        self.master = master
        self.budget_bytes = budget_bytes
        self.window = window
        self._window_start = 0
        self._spent = 0

    def note_grant(self, candidate: Candidate) -> None:
        if not candidate.from_write_buffer and candidate.master == self.master:
            self._spent += candidate.txn.total_bytes

    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        if ctx.now - self._window_start >= self.window:
            self._window_start = ctx.now
            self._spent = 0
        if self._spent < self.budget_bytes:
            return candidates
        survivors = [
            c
            for c in candidates
            if c.from_write_buffer or c.master != self.master
        ]
        return survivors  # abstains automatically if it would empty the set


def mean_latency(platform, master: int) -> float:
    txns = platform.masters[master].completed
    return sum(t.finished_at - t.issued_at for t in txns) / len(txns)


def run(throttled: bool):
    spec = paper_topology(transactions=200)
    platform = PlatformBuilder(spec).build("tlm")
    throttle = None
    if throttled:
        # dma2 (master 3) gets 512 bytes per 2048-cycle window.
        throttle = BandwidthThrottle(master=3, budget_bytes=512)
        # Insert ahead of the final tie-break.
        platform.bus.arbiter.filters.insert(-1, throttle)
        platform.attach(
            lambda txn, g, s, f: throttle.note_grant(
                Candidate(txn=txn, from_write_buffer=txn.master == 255)
            )
        )
    result = platform.run()
    return platform, result


def main() -> None:
    base_platform, base = run(throttled=False)
    throttled_platform, throttled = run(throttled=True)

    print("throttling DMA engine 'dma2' to 512 B / 2048 cycles:\n")
    print(f"{'':>24}{'unthrottled':>14}{'throttled':>14}")
    for master, name in [(0, "cpu0"), (3, "dma2")]:
        print(
            f"{'mean latency ' + name:>24}"
            f"{mean_latency(base_platform, master):>14.1f}"
            f"{mean_latency(throttled_platform, master):>14.1f}"
        )
    print(f"{'total cycles':>24}{base.cycles:>14}{throttled.cycles:>14}")
    print(
        "\nthe CPU's latency improves at the cost of the throttled DMA — "
        "an eighth filter dropped into the AHB+ chain."
    )


if __name__ == "__main__":
    main()
