#!/usr/bin/env python3
"""Bank interleaving through the AHB+ Bus Interface.

Paper §2: "the arbiter gives the next transaction information to DDRC
in advance, then, DDRC can pre-charge the next accessed memory bank ...
As a result, the next data can be served immediately right after the
previous data is processed."

Four streaming masters each own one DDR bank and open a new row on
every burst.  With the BI enabled, each row activation overlaps the
previous master's data transfer; with it disabled, every activation
serialises.

Run:  python examples/bank_interleaving.py
"""

from repro.system import paper_topology, sweep
from repro.traffic import bank_striped_workload


def run(bi_enabled: bool):
    spec = paper_topology(workload=bank_striped_workload(transactions=200))
    (point,) = sweep(spec, axis="bus_interface_enabled", values=(bi_enabled,))
    platform = point.build()
    result = platform.run()
    return platform, result


def main() -> None:
    platform_on, on = run(bi_enabled=True)
    platform_off, off = run(bi_enabled=False)

    print("bank-striped streaming, every burst opens a new row:\n")
    header = f"{'':>18}{'BI on':>12}{'BI off':>12}"
    print(header)
    print(f"{'total cycles':>18}{on.cycles:>12}{off.cycles:>12}")
    print(
        f"{'utilization':>18}{on.utilization:>12.3f}{off.utilization:>12.3f}"
    )
    print(
        f"{'row-hit rate':>18}"
        f"{platform_on.ddrc.row_hit_rate():>12.2f}"
        f"{platform_off.ddrc.row_hit_rate():>12.2f}"
    )
    print(
        f"{'banks prepared':>18}"
        f"{platform_on.ddrc.prepared_banks:>12}"
        f"{platform_off.ddrc.prepared_banks:>12}"
    )
    print(
        f"\nBus Interface throughput gain: {off.cycles / on.cycles:.3f}x "
        f"(next-transaction info hides row opens behind data transfers)"
    )


if __name__ == "__main__":
    main()
