#!/usr/bin/env python3
"""QoS guarantee: why AHB+ exists.

Paper §2: "AMBA2.0 protocol is widely being used, but the serious
problem is that it cannot guarantee master's QoS."

This example puts a real-time video stream at the *lowest* fixed
priority behind three saturating DMA engines, and runs the same traffic
on (a) a plain AMBA 2.0 AHB and (b) AHB+ with its QoS registers and
urgency-filter arbitration.  Plain AHB starves the stream; AHB+ meets
every deadline.

Run:  python examples/qos_guarantee.py
"""

from repro.system import PlatformBuilder, paper_topology
from repro.traffic import saturating_workload


def deadline_report(label: str, masters, rt_index: int) -> None:
    stream = masters[rt_index].completed
    misses = [t for t in stream if t.met_deadline is False]
    latencies = [t.finished_at - t.issued_at for t in stream]
    print(f"{label}:")
    print(f"  RT transactions : {len(stream)}")
    print(f"  deadline misses : {len(misses)} ({len(misses)/len(stream):.0%})")
    print(f"  worst latency   : {max(latencies)} cycles")
    print(f"  mean latency    : {sum(latencies)/len(latencies):.1f} cycles")


def main() -> None:
    workload = saturating_workload(transactions=100)
    rt_index = next(iter(workload.qos_map()))
    objective = workload.masters[rt_index].qos.objective_cycles
    print(
        f"video stream (master {rt_index}, lowest priority) must finish "
        f"each burst within {objective} cycles of its frame slot;\n"
        f"three DMA engines saturate the bus with 16-beat bursts.\n"
    )

    # One spec, two engines: the same topology elaborated as the
    # unextended baseline and as AHB+.
    builder = PlatformBuilder(paper_topology(workload=workload))

    plain = builder.build("plain")
    plain.run()
    deadline_report("plain AMBA 2.0 AHB", plain.masters, rt_index)

    print()
    ahbp = builder.build("tlm")
    result = ahbp.run()
    deadline_report("AHB+ (QoS registers + urgency filter)", ahbp.masters, rt_index)

    print()
    print(
        f"AHB+ served the same total traffic in {result.cycles} cycles "
        f"while guaranteeing the stream's objective."
    )


if __name__ == "__main__":
    main()
