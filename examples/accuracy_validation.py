#!/usr/bin/env python3
"""Reproduce Table 1: validate the TLM against the pin-accurate model.

Runs the three traffic-pattern suites on both abstraction levels with
identical seeds, checks functional equivalence (final memory image,
per-master read data) and prints the cycle-count comparison in the
paper's Table 1 format.

Run:  python examples/accuracy_validation.py  [--transactions N]
"""

import argparse
import time

from repro.analysis import render_table1, run_table1
from repro.traffic import table1_workloads


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--transactions",
        type=int,
        default=120,
        help="transactions per master per suite (default 120)",
    )
    args = parser.parse_args()

    print(
        f"running {args.transactions} transactions/master on both the "
        f"pin-accurate RTL model and the AHB+ TLM ..."
    )
    started = time.perf_counter()
    result = run_table1(table1_workloads(args.transactions))
    elapsed = time.perf_counter() - started

    print()
    print(render_table1(result))
    print(f"\n(total validation wall time: {elapsed:.1f} s)")

    if result.average_accuracy_pct >= 95.0:
        print("=> TLM accuracy is in the paper's reported range.")
    else:
        print("=> accuracy below the expected range; inspect the suites above.")


if __name__ == "__main__":
    main()
