#!/usr/bin/env python3
"""Sharded sweep execution with ``repro.exec.SweepRunner``.

The ablation experiments are embarrassingly parallel across grid
points, and every point is plain picklable data (a ``SystemSpec`` plus
an engine level).  This demo runs the filter-ablation grid twice — once
on the in-process ``serial`` backend and once sharded over a
``multiprocessing`` pool — checks the two record lists are *equal*
(the runner's determinism guarantee), and prints the resulting table.

Run:  python examples/sweep_demo.py [--transactions N] [--workers W]
"""

import argparse
import time

import repro.core  # noqa: F401  (anchor package import order)
from repro.analysis.experiments import filter_ablation_grid
from repro.errors import SimulationError
from repro.exec import SweepRunner, default_workers


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=60)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: one per CPU, capped by the grid)",
    )
    args = parser.parse_args()

    grid = filter_ablation_grid(args.transactions)
    print(
        f"filter-ablation grid: {len(grid)} points, "
        f"{args.transactions} transactions each\n"
    )

    start = time.perf_counter()
    serial = SweepRunner(backend="serial").run(grid)
    serial_wall = time.perf_counter() - start

    workers = (
        args.workers if args.workers is not None else default_workers(len(grid))
    )
    start = time.perf_counter()
    sharded = SweepRunner(backend="process", workers=args.workers).run(grid)
    process_wall = time.perf_counter() - start

    if serial != sharded:  # load-bearing check: must survive python -O
        raise SimulationError("backends produced different records")

    print(f"{'disabled filter':<20} {'cycles':>8} {'rt miss':>8} {'util':>6}")
    for record in sharded:
        print(
            f"{record.label:<20} {record.cycles:>8} "
            f"{record.rt_deadline_misses:>8} {record.utilization:>6.3f}"
        )
    print(
        f"\nserial  backend: {serial_wall:.3f}s"
        f"\nprocess backend: {process_wall:.3f}s  ({workers} workers, "
        f"{serial_wall / process_wall:.2f}x)"
    )
    print("records identical across backends: deterministic merge ok")


if __name__ == "__main__":
    main()
