#!/usr/bin/env python3
"""Trace-driven Table-1 playback: capture one run, replay it anywhere.

The paper's Table-1 methodology compares engines on *identical*
transaction streams.  This demo makes that literal:

1. capture the pattern-A run at TLM with a ``TraceRecorder`` and
   archive it as a JSON-lines file,
2. bind the file as a trace-backed ``Workload`` inside a ``SystemSpec``
   (``scenario("trace-replay", source=path)``),
3. replay the identical stream at TLM, plain-AHB and RTL and
   ``trace_diff`` every pair — functional fields must match record for
   record while the cycle counts differ (that *is* the comparison),
4. transform the trace (remap one master's window, stretch time) and
   replay the variant, and
5. fan the captured trace across a write-buffer-depth grid with the
   process-backend ``SweepRunner`` (the spec pickles, trace and all).

Run:  python examples/trace_replay.py [--transactions N]
"""

import argparse
import tempfile
from pathlib import Path

import repro.core  # noqa: F401  (anchor package import order)
from repro.analysis import trace_diff
from repro.errors import SimulationError
from repro.exec import SweepRunner
from repro.system import PlatformBuilder, scenario
from repro.system.spec import sweep
from repro.traffic import (
    TraceRecorder,
    load_trace_file,
    remap_addresses,
    save_trace,
    time_scale,
)


def replay_and_record(spec, level):
    """Elaborate *spec* at *level*, run it, return (records, result)."""
    platform = PlatformBuilder(spec).build(level)
    recorder = TraceRecorder()
    platform.attach(recorder)
    result = platform.run()
    return recorder.records, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=40)
    args = parser.parse_args()
    # The archive must outlive the sweep below: path-backed specs are
    # re-read inside the process backend's workers.
    with tempfile.TemporaryDirectory() as tmpdir:
        run_demo(args.transactions, Path(tmpdir))


def run_demo(transactions: int, tmpdir: Path) -> None:
    # 1. Capture the canonical pattern-A run at TLM.
    capture_spec = scenario("paper-pattern-a", transactions=transactions)
    platform = PlatformBuilder(capture_spec).build("tlm")
    recorder = TraceRecorder()
    platform.attach(recorder)
    captured = platform.run()
    trace_path = tmpdir / "pattern_a.jsonl"
    save_trace(recorder.records, trace_path)
    print(
        f"captured {len(recorder.records)} transactions in "
        f"{captured.cycles} TLM cycles -> {trace_path.name}"
    )

    # 2. Bind the archived file as a trace-backed workload.
    spec = scenario("trace-replay", source=str(trace_path))

    # 3. Replay the identical stream on every engine.
    print(f"\n{'engine':<8} {'cycles':>8} {'transactions':>13}")
    traces = {}
    for level in ("tlm", "plain", "rtl"):
        traces[level], result = replay_and_record(spec, level)
        print(f"{level:<8} {result.cycles:>8} {result.transactions:>13}")
    for level in ("plain", "rtl"):
        diff = trace_diff(traces["tlm"], traces[level])
        print(f"tlm vs {level:<6} {diff.summary()}")
        if not diff.functionally_identical:  # must survive python -O
            raise SimulationError(
                f"replay diverged between tlm and {level}: {diff.summary()}"
            )

    # 4. Transform the capture: shift master 0's window up 64 KiB and
    #    stretch the arrival process 2x, then replay the variant.
    records = load_trace_file(trace_path)
    shifted = remap_addresses(
        [r for r in records if r.master == 0], 64 * 1024
    ) + [r for r in records if r.master != 0]
    variant = scenario("trace-replay", source=time_scale(shifted, 2.0))
    _, stretched = replay_and_record(variant, "tlm")
    print(
        f"\ntransformed replay (remap +64K, time x2): "
        f"{stretched.cycles} cycles (vs {captured.cycles} captured)"
    )

    # 5. Sweep the same captured trace across a config grid, sharded
    #    over the process backend.
    grid = sweep(spec, axis="write_buffer_depth", values=[1, 2, 4, 8])
    serial = SweepRunner(backend="serial").run(grid)
    sharded = SweepRunner(backend="process").run(grid)
    if serial != sharded:  # load-bearing check: must survive python -O
        raise SimulationError("backends produced different records")
    print(f"\n{'write-buffer depth':<20} {'cycles':>8} {'absorbed':>9}")
    for record in sharded:
        print(
            f"{record.label:<20} {record.cycles:>8} "
            f"{record.absorbed_writes:>9}"
        )
    print("records identical across backends: one trace, many configs")


if __name__ == "__main__":
    main()
