#!/usr/bin/env python3
"""Driving AHB+ through transaction-level ports (paper §3.1–3.2).

The paper maps the signal protocol onto port methods: a master "calls
CheckGrant() and receives 'true'", then "calls 'Read(addr, *data,
*ctrl)' ... and receives 'OK'".  This example drives the bus exactly
that way — the style used when hooking an instruction-set simulator or
a hand-written stimulus to the model.

Run:  python examples/ports_demo.py
"""

from repro.core import AhbPlusConfig, InteractiveAhbPlus
from repro.ddr import DdrControllerTlm


def main() -> None:
    ddrc = DdrControllerTlm()
    system = InteractiveAhbPlus(ddrc, AhbPlusConfig(num_masters=2))
    cpu = system.port(0)
    dma = system.port(1)

    # The paper's CheckGrant(): an idle bus grants immediately.
    print(f"cycle {system.now:>5}: CheckGrant(cpu) -> {cpu.check_grant()}")

    # Posted write: returns POSTED with zero bus cycles consumed.
    status = cpu.write(0x1000, [0x11, 0x22, 0x33, 0x44])
    print(f"cycle {system.now:>5}: cpu.write(0x1000, 4 beats) -> {status.value}")

    # A DMA burst lands elsewhere while the write sits in the buffer.
    status = dma.write(0x8000, list(range(16)), posted=False)
    print(f"cycle {system.now:>5}: dma.write(0x8000, 16 beats) -> {status.value}")

    # Reading the posted address forces the hazard interlock to drain
    # the write buffer first — the data is fresh.
    status, data = cpu.read(0x1000, beats=4)
    print(
        f"cycle {system.now:>5}: cpu.read(0x1000, 4 beats) -> {status.value}, "
        f"data={[hex(d) for d in data]}"
    )

    # Burst read-back of the DMA block.
    status, data = dma.read(0x8000, beats=16)
    print(
        f"cycle {system.now:>5}: dma.read(0x8000, 16 beats) -> {status.value}, "
        f"sum={sum(data)}"
    )

    system.idle(50)
    system.drain_write_buffer()
    print(f"cycle {system.now:>5}: buffer drained, simulation idle")
    print(
        f"\nport stats: cpu posted={cpu.posted_writes} reads={cpu.reads}; "
        f"dma writes={dma.writes} reads={dma.reads}"
    )


if __name__ == "__main__":
    main()
