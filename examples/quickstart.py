#!/usr/bin/env python3
"""Quickstart: describe an AHB+ system, run traffic, read the profile.

Builds the paper's system — four masters on the AHB+ main bus with the
DDR controller behind the Bus Interface — from its declarative
:class:`~repro.system.SystemSpec`, runs a mixed workload and prints the
bus/port profile the paper's §3.6 profiling features expose.  The same
spec elaborates at any abstraction level: change ``"tlm"`` below to
``"rtl"`` (or ``"plain"``, or ``"tlm-threaded"``) and nothing else.

Run:  python examples/quickstart.py
"""

from repro.profiling import BusMonitor, bus_summary, filter_report, port_report
from repro.system import PlatformBuilder, paper_topology


def main() -> None:
    # A seeded 4-master scenario: one CPU plus three DMA-style movers.
    spec = paper_topology(transactions=300)
    workload = spec.workload

    # One call elaborates masters, QoS registers, the seven-filter
    # arbiter, write buffer, Bus Interface and the DDRC.
    platform = PlatformBuilder(spec).build("tlm")

    # Attach the profiling monitor, then run to completion.
    monitor = BusMonitor()
    platform.attach(monitor)
    result = platform.run()

    names = {i: spec.name for i, spec in enumerate(workload.masters)}
    print(bus_summary(monitor, result.cycles))
    print()
    print(port_report(monitor, names))
    print()
    print(filter_report(result.filter_stats))
    print()
    print(
        f"write buffer: {result.absorbed_writes} writes posted, "
        f"max occupancy {result.max_buffer_occupancy}"
    )
    print(
        f"request pipelining: {result.pipelined_grants} of "
        f"{result.transactions} grants overlapped the previous transfer"
    )
    print(f"DDR row-hit rate: {platform.ddrc.row_hit_rate():.2f}")


if __name__ == "__main__":
    main()
