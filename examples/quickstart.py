#!/usr/bin/env python3
"""Quickstart: build an AHB+ platform, run traffic, read the profile.

Builds the paper's system — four masters on the AHB+ main bus with the
DDR controller behind the Bus Interface — runs a mixed workload and
prints the bus/port profile the paper's §3.6 profiling features expose.

Run:  python examples/quickstart.py
"""

from repro.core import build_tlm_platform
from repro.profiling import BusMonitor, bus_summary, filter_report, port_report
from repro.traffic import table1_pattern_a


def main() -> None:
    # A seeded 4-master workload: one CPU plus three DMA-style movers.
    workload = table1_pattern_a(transactions=300)

    # One call assembles masters, QoS registers, the seven-filter
    # arbiter, write buffer, Bus Interface and the DDRC.
    platform = build_tlm_platform(workload)

    # Attach the profiling monitor, then run to completion.
    monitor = BusMonitor()
    platform.bus.add_observer(monitor)
    result = platform.run()

    names = {i: spec.name for i, spec in enumerate(workload.masters)}
    print(bus_summary(monitor, result.cycles))
    print()
    print(port_report(monitor, names))
    print()
    print(filter_report(result.filter_stats))
    print()
    print(
        f"write buffer: {result.absorbed_writes} writes posted, "
        f"max occupancy {result.max_buffer_occupancy}"
    )
    print(
        f"request pipelining: {result.pipelined_grants} of "
        f"{result.transactions} grants overlapped the previous transfer"
    )
    print(f"DDR row-hit rate: {platform.ddrc.row_hit_rate():.2f}")


if __name__ == "__main__":
    main()
