#!/usr/bin/env python3
"""Simulation-as-a-service with ``repro.serve``.

Starts a sweep daemon on a loopback port with a JSON-lines result
store, then demonstrates the serving loop end-to-end:

1. **Cold pass** — a client submits a write-buffer sweep grid; every
   point is simulated and filed under its content key.
2. **Warm pass** — the *same* grid submitted again replays entirely
   from the cache (100 % hit-rate) with records equal to the first
   pass: simulations are deterministic, so a hit is free and provably
   correct.
3. **Mixed pass** — a wider grid re-uses the warm points and simulates
   only the cold ones.
4. **Restart** — a second server opened on the same store file starts
   warm: the cache is persistent, not per-process.

Run:  python examples/serve_demo.py [--transactions N]
"""

import argparse
import tempfile
from pathlib import Path

import repro.core  # noqa: F401  (anchor package import order)
from repro.errors import SimulationError
from repro.serve import ResultStore, ServeClient, SweepServer
from repro.system import paper_topology, sweep


def submit_and_report(client: ServeClient, grid, title: str):
    result = client.submit(grid)
    print(f"{title}: {result.hits} cached / {result.misses} simulated "
          f"(hit rate {result.hit_rate:.0%})")
    for record, source in zip(result.records, result.sources):
        print(f"  {record.label:<24} {source:<9} {record.cycles:>7} cycles")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=40)
    args = parser.parse_args()

    spec = paper_topology(args.transactions)
    grid = sweep(spec, axis="write_buffer_depth", values=(1, 2, 4, 8))
    wider = sweep(spec, axis="write_buffer_depth", values=(1, 2, 4, 8, 16, 32))

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        store_path = Path(tmp) / "results.jsonl"

        with SweepServer(store=ResultStore(store_path)) as server:
            host, port = server.address
            client = ServeClient(host, port)
            print(f"daemon listening on {host}:{port} "
                  f"(protocol {client.ping()})\n")

            cold = submit_and_report(client, grid, "cold pass")
            warm = submit_and_report(client, grid, "warm pass")
            if warm.hit_rate != 1.0:  # must survive python -O
                raise SimulationError("warm pass was not 100% cache hits")
            if warm.records != cold.records:
                raise SimulationError("cache replay diverged from cold run")
            print("warm records are bit-identical to the cold pass\n")

            submit_and_report(client, wider, "mixed pass (wider grid)")
            stats = client.status()["stats"]
            print(f"\nserver stats: {stats['points']} points in, "
                  f"{stats['hits']} hits, {stats['misses']} misses, "
                  f"max queue depth {stats['max_queue_depth']}")
            client.shutdown()
            server.wait(timeout=10.0)
        print("daemon stopped cleanly")

        # A fresh server on the same store starts warm: the cache is
        # content-addressed state on disk, not process memory.
        with SweepServer(store=ResultStore(store_path)) as server:
            client = ServeClient(*server.address)
            revived = submit_and_report(
                client, wider, "\nafter restart (same store)"
            )
            if revived.hit_rate != 1.0:
                raise SimulationError("restarted server lost the cache")
        print("restart served everything from the persisted store")


if __name__ == "__main__":
    main()
