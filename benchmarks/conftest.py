"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables; the pin-accurate runs are
expensive, so heavyweight comparisons run once per benchmark round.
"""

import pytest

#: Transaction count per master for benchmark workloads.  Large enough
#: for stable shapes, small enough that the RTL reference stays fast.
SCALE = 100


@pytest.fixture
def scale():
    return SCALE
