"""Ablation A4 — QoS guarantee: plain AMBA 2.0 AHB vs AHB+.

Paper §2: "AMBA2.0 protocol is widely being used, but the serious
problem is that it cannot guarantee master's QoS.  AHB+ is designed to
address this issue."  The regenerated pair runs a low-priority real-time
stream under NRT saturation on both architectures.
"""

from repro.analysis import experiment_qos
from repro.system import PlatformBuilder, paper_topology
from repro.traffic import saturating_workload

from benchmarks.conftest import SCALE


def test_qos_guarantee_shape():
    """Regenerate the QoS comparison and assert the paper's motivation."""
    plain, ahbp = experiment_qos(transactions=SCALE // 2)
    print("\nQoS under NRT saturation (RT stream at lowest priority):")
    for point in (plain, ahbp):
        print(
            f"  {point.label:>9}: misses={point.deadline_misses}/"
            f"{point.rt_transactions}  miss-rate={point.miss_rate:.2f}  "
            f"worst latency={point.worst_latency}"
        )
    assert plain.miss_rate > 0.5, "plain AHB should starve the RT stream"
    assert ahbp.miss_rate == 0.0, "AHB+ must guarantee the QoS objective"
    assert ahbp.worst_latency < plain.worst_latency


def _builder():
    return PlatformBuilder(
        paper_topology(workload=saturating_workload(SCALE // 2))
    )


def test_benchmark_plain_ahb(benchmark):
    assert benchmark(lambda: _builder().build("plain").run().cycles) > 0


def test_benchmark_ahbplus(benchmark):
    assert benchmark(lambda: _builder().build("tlm").run().cycles) > 0
