"""Ablation A4 — QoS guarantee: plain AMBA 2.0 AHB vs AHB+.

Paper §2: "AMBA2.0 protocol is widely being used, but the serious
problem is that it cannot guarantee master's QoS.  AHB+ is designed to
address this issue."  The regenerated pair runs a low-priority real-time
stream under NRT saturation on both architectures.
"""

from repro.analysis import experiment_qos
from repro.core import build_plain_platform, build_tlm_platform
from repro.traffic import saturating_workload

from benchmarks.conftest import SCALE


def test_qos_guarantee_shape():
    """Regenerate the QoS comparison and assert the paper's motivation."""
    plain, ahbp = experiment_qos(transactions=SCALE // 2)
    print("\nQoS under NRT saturation (RT stream at lowest priority):")
    for point in (plain, ahbp):
        print(
            f"  {point.label:>9}: misses={point.deadline_misses}/"
            f"{point.rt_transactions}  miss-rate={point.miss_rate:.2f}  "
            f"worst latency={point.worst_latency}"
        )
    assert plain.miss_rate > 0.5, "plain AHB should starve the RT stream"
    assert ahbp.miss_rate == 0.0, "AHB+ must guarantee the QoS objective"
    assert ahbp.worst_latency < plain.worst_latency


def test_benchmark_plain_ahb(benchmark):
    workload = saturating_workload(SCALE // 2)
    assert benchmark(lambda: build_plain_platform(workload).run().cycles) > 0


def test_benchmark_ahbplus(benchmark):
    workload = saturating_workload(SCALE // 2)
    assert benchmark(lambda: build_tlm_platform(workload).run().cycles) > 0
