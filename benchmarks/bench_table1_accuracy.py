"""Table 1 — TLM-vs-RTL accuracy over the three traffic suites.

Regenerates the paper's Table 1: per-pattern cycle counts at both
abstraction levels, signed differences and the average accuracy, and
asserts the paper's shape: functional equivalence plus a small average
cycle-count error (paper: < 3 % / "97 % of accuracy on average").
"""

import pytest

from repro.analysis import compare_models, render_table1, run_table1
from repro.traffic import table1_workloads

from benchmarks.conftest import SCALE


def test_table1_regeneration():
    """The full Table 1: accuracy per suite, averaged."""
    result = run_table1(table1_workloads(SCALE))
    print("\n" + render_table1(result))
    assert result.all_functional, "RTL and TLM computed different results"
    assert result.average_error_pct <= 8.0, (
        f"average cycle error {result.average_error_pct:.2f}% "
        f"exceeds the acceptance bound"
    )
    assert min(s.total_error_pct for s in result.suites) < 2.0


@pytest.mark.parametrize("suite_index", [0, 1, 2])
def test_each_suite_functional(suite_index):
    """Every suite individually matches functionally."""
    workload = table1_workloads(max(SCALE // 2, 30))[suite_index]
    suite = compare_models(workload)
    assert suite.functional_match
    assert suite.total_error_pct < 12.0


def bench_tlm_pattern(benchmark, workload):
    from repro.system import PlatformBuilder, paper_topology

    def run():
        return PlatformBuilder(
            paper_topology(workload=workload)
        ).build("tlm").run().cycles

    cycles = benchmark(run)
    assert cycles > 0


@pytest.mark.parametrize("index", [0, 1, 2])
def test_benchmark_tlm_suites(benchmark, index):
    """Wall-clock of the TLM on each Table 1 suite (regression watch)."""
    bench_tlm_pattern(benchmark, table1_workloads(SCALE)[index])
