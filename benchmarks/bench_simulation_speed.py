"""§4 speed — RTL vs TLM Kcycles/s and the single-master uplift.

The paper reports 0.47 Kcycles/s (RTL), 166 Kcycles/s (4-master TLM,
353×) and 456 Kcycles/s (single master).  Absolute values are host- and
language-dependent; the asserted shape is the ordering and a wide
TLM-over-RTL margin.
"""

from repro.analysis import (
    measure_rtl,
    measure_tlm,
    render_speed,
    speed_comparison,
)
from repro.traffic import single_master_workload, table1_pattern_a

from benchmarks.conftest import SCALE


def test_speed_report_shape():
    """Regenerate the speed table and assert the paper's ordering."""
    report = speed_comparison(
        multi_master=table1_pattern_a(SCALE),
        single_master=single_master_workload(SCALE * 2),
        include_thread=True,
    )
    print("\n" + render_speed(report))
    # The seed asserted > 10x, but the RTL model has since gained 3.7x
    # (event kernel, quiescence skip-ahead, event-driven FSMs) while
    # TLM gained ~2x, so the structural margin is now ~6-8x.  The
    # paper's qualitative claim — a wide TLM-over-RTL margin — still
    # holds; the floor below tracks the optimised RTL.
    assert report.speedup > 4, f"TLM only {report.speedup:.1f}x over RTL"
    assert report.tlm_single_master is not None
    # Single master simulates more cycles per second than 4 contending
    # masters (the paper's 456 vs 166 Kcycles/s).
    assert (
        report.tlm_single_master.kcycles_per_sec
        > report.tlm_method.kcycles_per_sec
    )


def test_benchmark_rtl_kcycles(benchmark):
    """Wall-clock the pin-accurate reference (the paper's 0.47 Kcyc/s row)."""
    workload = table1_pattern_a(max(SCALE // 4, 20))
    sample = benchmark.pedantic(
        lambda: measure_rtl(workload), rounds=1, iterations=1
    )
    assert sample.kcycles_per_sec > 0


def test_benchmark_tlm_kcycles(benchmark):
    """Wall-clock the TLM on the same workload (the 166 Kcyc/s row)."""
    workload = table1_pattern_a(SCALE)
    sample = benchmark(lambda: measure_tlm(workload))
    assert sample.kcycles_per_sec > 0


def test_benchmark_single_master_kcycles(benchmark):
    """Single-master pure bus performance (the 456 Kcyc/s row)."""
    workload = single_master_workload(SCALE * 2)
    sample = benchmark(lambda: measure_tlm(workload))
    assert sample.kcycles_per_sec > 0
