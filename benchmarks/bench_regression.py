"""Speed-regression gate over the committed ``BENCH_speed.json``.

Usage (see also ``make bench`` / ``make bench-baseline``)::

    PYTHONPATH=src python -m benchmarks.bench_regression
        Run the §4 speed suite and fail (exit 1) if any model is more
        than --threshold below the committed baseline.

    PYTHONPATH=src python -m benchmarks.bench_regression --write-baseline
        Run the suite and rewrite BENCH_speed.json's ``current`` block
        (the ``seed`` block — the pre-optimisation measurement — is
        preserved so cumulative speedups keep their reference).

Beyond the per-model Kcycles/s gate, the suite measures traffic
generation (items/s per mode), end-to-end sweep execution (the A5
filter grid, serial vs process over a reused pool), the lockstep batch
backend (serial vs batch points/s on a 100-seed single-master grid)
and the serving layer (warm submissions/s, cache hit-rate, queue depth
and per-burst backend dispatch through an in-process ``repro.serve``
server under a concurrent duplicate-heavy burst).  On hosts with
more than one worker the process backend must beat serial by
``--min-sweep-speedup`` (default 1.5x); on single-CPU hosts the
speedup is recorded but not gated — a pool of one worker can only add
overhead.  When numpy is available the batch backend must beat serial
by ``--min-batch-speedup`` (default 2.0x) on its seed grid; without
numpy it degrades to serial execution and is recorded but not gated.

``--models rtl`` narrows measurement and grading to a model subset
(the check path prints a per-model delta table either way), and
``--trajectory`` renders the committed speed history (seed → PR
milestones → current) without measuring anything.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import repro.core  # noqa: F401  (anchor package import order)
from repro.analysis.bench_io import (
    MODELS,
    append_history,
    compare_reports,
    load_report,
    make_report,
    render_block,
    render_delta_table,
    render_trajectory,
    run_speed_suite,
    same_host,
    speedups_vs,
    write_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_speed.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline report path (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional slowdown per model (default: 0.20)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record this run as the new baseline instead of checking",
    )
    parser.add_argument(
        "--repeats-tlm", type=int, default=5, help="best-of-N for TLM runs"
    )
    parser.add_argument(
        "--repeats-rtl", type=int, default=3, help="best-of-N for RTL runs"
    )
    parser.add_argument(
        "--min-sweep-speedup",
        type=float,
        default=1.5,
        help=(
            "required process-over-serial sweep speedup when the host "
            "has more than one worker (default: 1.5)"
        ),
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=2.0,
        help=(
            "required batch-over-serial points/s speedup on the "
            "lockstep seed grid when numpy is available (default: 2.0)"
        ),
    )
    parser.add_argument(
        "--models",
        nargs="+",
        choices=MODELS,
        default=None,
        metavar="MODEL",
        help=(
            "measure/gate only these models (e.g. --models rtl while "
            "iterating on the pin-accurate hot path)"
        ),
    )
    parser.add_argument(
        "--trajectory",
        action="store_true",
        help="print the committed speed-trajectory table and exit",
    )
    args = parser.parse_args(argv)

    if args.trajectory:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}", file=sys.stderr)
            return 2
        print(render_trajectory(load_report(args.baseline)))
        return 0

    if args.write_baseline and args.models is not None:
        # Validated before any measurement runs: a partial suite must
        # never overwrite the committed full-suite baseline.
        print(
            "--write-baseline needs the full model suite; drop --models",
            file=sys.stderr,
        )
        return 2

    fresh = run_speed_suite(
        repeats_tlm=args.repeats_tlm,
        repeats_rtl=args.repeats_rtl,
        models=args.models,
        # A filtered run is for fast iteration on one model: skip the
        # unrelated trafficgen/sweep/serve suites too.
        include_trafficgen=args.models is None,
        include_sweep=args.models is None,
        include_serve=args.models is None,
        include_batch=args.models is None,
    )
    print(render_block(fresh, title="this run"))

    # Baseline-independent gates: the sweep and batch speedups are
    # properties of *this* run, so they fire on every path (except an
    # explicit baseline rewrite, where they are surfaced as warnings).
    sweep_failures = _check_sweep_speedup(fresh, args.min_sweep_speedup)
    sweep_failures.extend(_check_batch_speedup(fresh, args.min_batch_speedup))

    if args.write_baseline:
        for failure in sweep_failures:
            print(f"WARNING: {failure}", file=sys.stderr)
        seed = None
        history = None
        if args.baseline.exists():
            previous = load_report(args.baseline)
            seed = previous.get("seed")
            # Archive the *outgoing* current block as a history
            # milestone before this run replaces it — the fresh numbers
            # live in `current`, never duplicated into history.  A
            # re-record at the same revision just replaces `current`;
            # archiving it would render a self-milestone next to an
            # identical current row.
            outgoing = previous.get("current")
            history = previous.get("history")
            if outgoing and outgoing.get("git_rev") == fresh.get("git_rev"):
                outgoing = None
            if outgoing:
                history = append_history(
                    history,  # type: ignore[arg-type]
                    outgoing,  # type: ignore[arg-type]
                    label=f"rev {outgoing.get('git_rev', '?')}",  # type: ignore[union-attr]
                )
        report = make_report(fresh, seed=seed, history=history)
        write_report(args.baseline, report)
        print(f"baseline written to {args.baseline}")
        print(f"speedup vs seed: {report['speedup_vs_seed']}")
        return 0

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --write-baseline first",
            file=sys.stderr,
        )
        if sweep_failures:
            for failure in sweep_failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        return 2

    baseline = load_report(args.baseline)
    # The readable verdict table is the primary comparison output; the
    # REGRESSION lines below stay as the machine-greppable detail.
    print(render_delta_table(fresh, baseline, threshold=args.threshold))
    seed = baseline.get("seed")
    if seed is not None:
        print(f"cumulative speedup vs seed: {speedups_vs(fresh, seed)}")
    if not same_host(fresh, baseline):
        print(
            "baseline was recorded on a different host; absolute Kcycles/s "
            "do not transfer between machines, so only cycle-count "
            "determinism and the sweep speedup are graded. Run "
            "`make bench-baseline` on this host for the full gate."
        )
    # compare_reports skips the Kcycles/s thresholds itself on a host
    # mismatch but always grades simulated-cycle determinism.
    failures = compare_reports(fresh, baseline, threshold=args.threshold)
    failures.extend(sweep_failures)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"ok: within {args.threshold:.0%} of baseline for all models")
    return 0


def _check_sweep_speedup(fresh: dict, minimum: float) -> list:
    """Gate the process-backend sweep speedup on multi-worker hosts."""
    sweep = fresh.get("sweep")
    if not sweep:
        return []
    if sweep["workers"] <= 1:
        print(
            "note: single-worker host — process-over-serial sweep speedup "
            f"({sweep['process_over_serial']}x) is recorded but not gated."
        )
        return []
    if sweep["process_over_serial"] < minimum:
        return [
            f"sweep: process backend is only {sweep['process_over_serial']}x "
            f"over serial with {sweep['workers']} workers "
            f"(required: {minimum}x)"
        ]
    return []


def _check_batch_speedup(fresh: dict, minimum: float) -> list:
    """Gate the lockstep batch backend's points/s over serial."""
    batch = fresh.get("batch")
    if not batch:
        return []
    if not batch.get("available"):
        print(
            "note: numpy unavailable — the batch backend degrades to "
            "serial execution, so its speedup is not gated."
        )
        return []
    if batch["batch_over_serial"] < minimum:
        return [
            f"batch: lockstep backend is only {batch['batch_over_serial']}x "
            f"over serial on the {batch['points']}-point seed grid "
            f"(required: {minimum}x)"
        ]
    return []


if __name__ == "__main__":
    raise SystemExit(main())
