"""Speed-regression gate over the committed ``BENCH_speed.json``.

Usage (see also ``make bench`` / ``make bench-baseline``)::

    PYTHONPATH=src python -m benchmarks.bench_regression
        Run the §4 speed suite and fail (exit 1) if any model is more
        than --threshold below the committed baseline.

    PYTHONPATH=src python -m benchmarks.bench_regression --write-baseline
        Run the suite and rewrite BENCH_speed.json's ``current`` block
        (the ``seed`` block — the pre-optimisation measurement — is
        preserved so cumulative speedups keep their reference).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import repro.core  # noqa: F401  (anchor package import order)
from repro.analysis.bench_io import (
    compare_reports,
    load_report,
    make_report,
    render_block,
    run_speed_suite,
    same_host,
    speedups_vs,
    write_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_speed.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline report path (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional slowdown per model (default: 0.20)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record this run as the new baseline instead of checking",
    )
    parser.add_argument(
        "--repeats-tlm", type=int, default=5, help="best-of-N for TLM runs"
    )
    parser.add_argument(
        "--repeats-rtl", type=int, default=3, help="best-of-N for RTL runs"
    )
    args = parser.parse_args(argv)

    fresh = run_speed_suite(
        repeats_tlm=args.repeats_tlm, repeats_rtl=args.repeats_rtl
    )
    print(render_block(fresh, title="this run"))

    if args.write_baseline:
        seed = None
        if args.baseline.exists():
            seed = load_report(args.baseline).get("seed")
        report = make_report(fresh, seed=seed)
        write_report(args.baseline, report)
        print(f"baseline written to {args.baseline}")
        print(f"speedup vs seed: {report['speedup_vs_seed']}")
        return 0

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --write-baseline first",
            file=sys.stderr,
        )
        return 2

    baseline = load_report(args.baseline)
    print(render_block(baseline.get("current", baseline), title="baseline"))
    seed = baseline.get("seed")
    if seed is not None:
        print(f"cumulative speedup vs seed: {speedups_vs(fresh, seed)}")
    if not same_host(fresh, baseline):
        print(
            "baseline was recorded on a different host; absolute Kcycles/s "
            "do not transfer between machines — skipping the regression "
            "gate. Run `make bench-baseline` on this host first."
        )
        return 0
    failures = compare_reports(fresh, baseline, threshold=args.threshold)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"ok: within {args.threshold:.0%} of baseline for all models")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
