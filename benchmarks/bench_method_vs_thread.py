"""§4 modeling-style claim — method-based vs thread-based TLM speed.

"To increase simulation speed, we used method-based modeling method
rather than thread-based method."  Both engines produce identical
results (asserted by the test suite); these benchmarks measure the
speed difference that motivated the choice.
"""

from repro.system import PlatformBuilder, paper_topology
from repro.traffic import table1_pattern_a

from benchmarks.conftest import SCALE


def _run(level: str) -> int:
    builder = PlatformBuilder(paper_topology(workload=table1_pattern_a(SCALE)))
    return builder.build(level).run().cycles


def test_method_and_thread_agree():
    assert _run("tlm") == _run("tlm-threaded")


def test_benchmark_method_engine(benchmark):
    """Callback-driven engine (the paper's choice)."""
    cycles = benchmark(lambda: _run("tlm"))
    assert cycles > 0


def test_benchmark_thread_engine(benchmark):
    """Generator/'sc_thread' style engine (the style avoided)."""
    cycles = benchmark(lambda: _run("tlm-threaded"))
    assert cycles > 0
