"""§4 modeling-style claim — method-based vs thread-based TLM speed.

"To increase simulation speed, we used method-based modeling method
rather than thread-based method."  Both engines produce identical
results (asserted by the test suite); these benchmarks measure the
speed difference that motivated the choice.
"""

from repro.core import build_tlm_platform
from repro.traffic import table1_pattern_a

from benchmarks.conftest import SCALE


def _run(engine: str) -> int:
    platform = build_tlm_platform(table1_pattern_a(SCALE), engine=engine)
    return platform.run().cycles


def test_method_and_thread_agree():
    assert _run("method") == _run("thread")


def test_benchmark_method_engine(benchmark):
    """Callback-driven engine (the paper's choice)."""
    cycles = benchmark(lambda: _run("method"))
    assert cycles > 0


def test_benchmark_thread_engine(benchmark):
    """Generator/'sc_thread' style engine (the style avoided)."""
    cycles = benchmark(lambda: _run("thread"))
    assert cycles > 0
