"""§4 kernel claim — 2-step cycle-based engine vs event-driven stepping.

"Also, we used 2-step cycle-based simulation tool to further speed up
the simulation."  Both runs execute the identical RTL netlist for the
same cycle count; the event-driven variant pays discrete-event queue
traffic per cycle.
"""

from repro.analysis import kernel_comparison
from repro.system import PlatformBuilder, paper_topology
from repro.traffic import single_master_workload

CYCLES = 1500


def test_kernels_simulate_identically():
    native, event = kernel_comparison(single_master_workload(40), cycles=CYCLES)
    assert native.simulated_cycles == event.simulated_cycles == CYCLES


def test_benchmark_cycle_kernel(benchmark):
    """Flat evaluate/update sweeps (the paper's 2-step tool)."""

    def run():
        platform = PlatformBuilder(
            paper_topology(workload=single_master_workload(40))
        ).build("rtl")
        platform.engine.run(CYCLES)
        return platform.engine.cycle

    assert benchmark.pedantic(run, rounds=2, iterations=1) == CYCLES


def test_benchmark_event_driven_kernel(benchmark):
    """The same netlist stepped through a discrete-event queue."""
    from repro.kernel.simulator import Simulator

    def run():
        platform = PlatformBuilder(
            paper_topology(workload=single_master_workload(40))
        ).build("rtl")
        sim = Simulator()

        def tick():
            platform.engine.step()
            if platform.engine.cycle < CYCLES:
                sim.schedule_after(1, tick)

        sim.schedule_after(1, tick)
        sim.run()
        return platform.engine.cycle

    assert benchmark.pedantic(run, rounds=2, iterations=1) == CYCLES
