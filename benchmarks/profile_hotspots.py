"""cProfile the bench models and print their hottest functions.

Usage (see also ``make profile``)::

    PYTHONPATH=src python -m benchmarks.profile_hotspots
        Profile one run of every bench model (the exact workloads the
        speed suite wall-clocks) and print the top cumulative-time
        functions per model.

    PYTHONPATH=src python -m benchmarks.profile_hotspots --models rtl --top 25
        Restrict to one model and/or deepen the listing.

Perf PRs cite these tables as their before/after evidence: run once on
the parent commit, once on the branch, and the shifted rows are the
optimisation's footprint.  Platform construction is excluded from the
profile, matching the speed suite's untimed-build methodology.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

import repro.core  # noqa: F401  (anchor package import order)
from repro.analysis.bench_io import BENCH_MODEL_RUNS
from repro.system.platform import PlatformBuilder
from repro.system.scenarios import paper_topology


def _build(name: str) -> object:
    """Build the exact (level, workload) pair the speed suite times.

    ``BENCH_MODEL_RUNS`` is the shared definition, so `make profile`
    can never drift from what `make bench` measures.
    """
    level, make_workload = BENCH_MODEL_RUNS[name]
    return PlatformBuilder(
        paper_topology(workload=make_workload())
    ).build(level)


def profile_model(name: str, top: int = 15) -> pstats.Stats:
    """Profile one bench model's ``run()`` and print its top functions."""
    platform = _build(name)
    profiler = cProfile.Profile()
    profiler.enable()
    platform.run()
    profiler.disable()
    stats = pstats.Stats(profiler).sort_stats("cumulative")
    print(f"\n== {name}: top {top} by cumulative time ==")
    stats.print_stats(top)
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--models",
        nargs="+",
        choices=tuple(BENCH_MODEL_RUNS),
        default=tuple(BENCH_MODEL_RUNS),
        metavar="MODEL",
        help="models to profile (default: all bench models)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        help="functions to list per model (default: 15)",
    )
    args = parser.parse_args(argv)
    for name in args.models:
        profile_model(name, top=args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
