"""Benchmark suite package (pytest-benchmark files + the regression CLI)."""
