"""Ablation A2 — the AHB+ write buffer (off + depth sweep).

Paper §3.3/§3.7: the write buffer posts writes that lost arbitration and
its depth is a model parameter.  The regenerated series shows posted
writes cutting master-observed write latency.
"""

import pytest

from repro.analysis import experiment_write_buffer
from repro.system import paper_topology, sweep
from repro.traffic import write_heavy_workload

from benchmarks.conftest import SCALE


def test_write_buffer_series():
    """Regenerate the depth sweep and assert its shape."""
    points = experiment_write_buffer(transactions=SCALE, depths=(1, 2, 4, 8))
    print("\nwrite-buffer sweep (write-heavy workload):")
    for point in points:
        print(
            f"  {point.label:>7}: cycles={point.cycles}  "
            f"absorbed={point.absorbed}  "
            f"mean write latency={point.mean_write_latency:.1f}"
        )
    off = points[0]
    deepest = points[-1]
    assert off.absorbed == 0
    assert deepest.absorbed > 0
    assert deepest.mean_write_latency < off.mean_write_latency
    # Deeper buffers absorb at least as many writes as shallow ones.
    absorbed = [p.absorbed for p in points[1:]]
    assert absorbed == sorted(absorbed)


@pytest.mark.parametrize("depth", [1, 4])
def test_benchmark_write_buffer_depth(benchmark, depth):
    spec = paper_topology(workload=write_heavy_workload(SCALE))
    (point,) = sweep(spec, axis="write_buffer_depth", values=(depth,))

    def run():
        return point.build().run().cycles

    assert benchmark(run) > 0
