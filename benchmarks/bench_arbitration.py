"""Ablation A5 — the seven arbitration filters, disabled one at a time.

Paper §3.3/§3.7: seven always-active filters with per-algorithm on/off
parameters.  The sweep disables each switchable filter on the mixed
RT/NRT suite and reports throughput and deadline behaviour.
"""

import pytest

from repro.analysis import experiment_filters
from repro.system import paper_topology, sweep
from repro.traffic import table1_pattern_c

from benchmarks.conftest import SCALE


def test_filter_ablation_series():
    """Regenerate the per-filter ablation and assert its shape."""
    points = experiment_filters(transactions=SCALE // 2)
    print("\narbitration-filter ablation (mixed RT/NRT suite):")
    for point in points:
        print(
            f"  disabled={point.disabled:>9}: cycles={point.cycles}  "
            f"rt-misses={point.rt_misses}  util={point.utilization:.3f}"
        )
    baseline = points[0]
    assert baseline.disabled == "none"
    assert baseline.rt_misses == 0
    urgency_off = next(p for p in points if p.disabled == "urgency")
    assert urgency_off.rt_misses >= baseline.rt_misses


@pytest.mark.parametrize(
    "disabled", ["none", "urgency", "bank", "pressure"]
)
def test_benchmark_filters(benchmark, disabled):
    spec = paper_topology(workload=table1_pattern_c(SCALE // 2))
    (point,) = sweep(
        spec,
        axis="disabled_filters",
        values=(() if disabled == "none" else (disabled,),),
    )

    def run():
        return point.build().run().cycles

    assert benchmark(run) > 0
