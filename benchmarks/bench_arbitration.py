"""Ablation A5 — the seven arbitration filters, disabled one at a time.

Paper §3.3/§3.7: seven always-active filters with per-algorithm on/off
parameters.  The sweep disables each switchable filter on the mixed
RT/NRT suite and reports throughput and deadline behaviour.
"""

import pytest

from repro.analysis import experiment_filters
from repro.core import build_tlm_platform
from repro.core.platform import config_for_workload
from repro.traffic import table1_pattern_c

from dataclasses import replace

from benchmarks.conftest import SCALE


def test_filter_ablation_series():
    """Regenerate the per-filter ablation and assert its shape."""
    points = experiment_filters(transactions=SCALE // 2)
    print("\narbitration-filter ablation (mixed RT/NRT suite):")
    for point in points:
        print(
            f"  disabled={point.disabled:>9}: cycles={point.cycles}  "
            f"rt-misses={point.rt_misses}  util={point.utilization:.3f}"
        )
    baseline = points[0]
    assert baseline.disabled == "none"
    assert baseline.rt_misses == 0
    urgency_off = next(p for p in points if p.disabled == "urgency")
    assert urgency_off.rt_misses >= baseline.rt_misses


@pytest.mark.parametrize(
    "disabled", ["none", "urgency", "bank", "pressure"]
)
def test_benchmark_filters(benchmark, disabled):
    workload = table1_pattern_c(SCALE // 2)
    base = config_for_workload(workload)
    cfg = (
        base
        if disabled == "none"
        else replace(base, disabled_filters=(disabled,))
    )

    def run():
        return build_tlm_platform(workload, config=cfg).run().cycles

    assert benchmark(run) > 0
