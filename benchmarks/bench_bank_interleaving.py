"""Ablation A3 — bank interleaving through the Bus Interface.

Paper §2/§3.4: the BI forwards next-transaction info so the DDRC can
pre-charge/activate the next bank while the current burst streams,
"maximizing bus utilization".  The regenerated pair shows BI-on beating
BI-off on a row-missing, bank-striped workload.
"""

import pytest

from repro.analysis import experiment_bank_interleaving
from repro.system import paper_topology, sweep
from repro.traffic import bank_striped_workload

from benchmarks.conftest import SCALE


def test_bank_interleaving_shape():
    """Regenerate the BI on/off comparison and assert its shape."""
    on, off = experiment_bank_interleaving(transactions=SCALE)
    print("\nbank interleaving (row-striding workload):")
    for point in (on, off):
        print(
            f"  {point.label:>6}: cycles={point.cycles}  "
            f"util={point.utilization:.3f}  "
            f"prepared={point.prepared_banks}  "
            f"row-hit={point.row_hit_rate:.2f}"
        )
    assert on.cycles < off.cycles, "BI should improve throughput"
    assert on.prepared_banks > 0 and off.prepared_banks == 0
    assert on.row_hit_rate > off.row_hit_rate
    speedup = off.cycles / on.cycles
    print(f"  BI throughput gain: {speedup:.3f}x")


@pytest.mark.parametrize("bi_enabled", [True, False], ids=["bi-on", "bi-off"])
def test_benchmark_interleaving(benchmark, bi_enabled):
    spec = paper_topology(workload=bank_striped_workload(SCALE))
    (point,) = sweep(spec, axis="bus_interface_enabled", values=(bi_enabled,))

    def run():
        return point.build().run().cycles

    assert benchmark(run) > 0
