"""The serving layer: store, protocol, server, client, CLI.

Pins the tentpole acceptance criteria: a grid submitted twice through
the server returns bit-identical records with a 100 % cache hit-rate on
the second pass; a mixed warm/cold submission runs only the cold
points; in-flight duplicates join the running point instead of
re-running; and crash/timeout rows are never cached as authoritative
results (a retry re-runs the point).
"""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro.core  # noqa: F401  (anchor package import order)
from repro.errors import ConfigError, SimulationError
from repro.exec import RunRecord, SweepRunner, point_key
from repro.serve import (
    PROTOCOL,
    ResultStore,
    ServeClient,
    SweepServer,
    point_from_wire,
    point_to_wire,
)
from repro.system import paper_topology, sweep
from repro.traffic import single_master_workload

REPO = Path(__file__).resolve().parent.parent


def _grid(transactions=15, values=(1, 2, 4)):
    spec = paper_topology(workload=single_master_workload(transactions))
    return sweep(spec, axis="write_buffer_depth", values=values)


def _one_record(transactions=10):
    [record] = SweepRunner().run(_grid(transactions, values=(4,)))
    return record


@pytest.fixture()
def served():
    """A running in-process server plus a connected client."""
    with SweepServer() as server:
        yield server, ServeClient(*server.address)


class TestResultStore:
    def test_put_get_and_first_write_wins(self):
        store = ResultStore()
        record = _one_record()
        assert store.put("k1", record)
        assert store.get("k1") == record
        assert not store.put("k1", record)  # duplicate filing refused
        assert len(store) == 1 and "k1" in store

    def test_persists_and_reloads(self, tmp_path):
        path = tmp_path / "results.jsonl"
        record = _one_record()
        store = ResultStore(path)
        store.put("k1", record)
        reopened = ResultStore(path)
        assert reopened.get("k1") == record
        assert reopened.get("k1").content_key() == record.content_key()
        assert reopened.stats()["entries"] == 1

    def test_corrupt_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put("k1", _one_record())
        with path.open("a") as handle:
            handle.write('{"key": "k2", "rec')  # crash mid-append
        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.skipped_lines == 1

    def test_failure_rows_are_never_cached(self):
        """Satellite: crash/timeout records must not become authoritative."""
        [point] = _grid(values=(4,))
        store = ResultStore()
        crash = RunRecord.from_error(point, "SimulationError: boom")
        timeout = RunRecord.from_error(point, "timeout: no result within 2s")
        assert not store.put("crash", crash)
        assert not store.put("timeout", timeout)
        assert store.get("crash") is None and store.get("timeout") is None
        assert len(store) == 0
        assert store.rejected_failures == 2

    def test_failure_rows_in_file_dropped_on_load(self, tmp_path):
        path = tmp_path / "results.jsonl"
        [point] = _grid(values=(4,))
        bad = RunRecord.from_error(point, "timeout: hand-edited store")
        path.write_text(
            json.dumps({"key": "bad", "record": bad.to_dict()}) + "\n"
        )
        store = ResultStore(path)
        assert store.get("bad") is None
        assert store.rejected_failures == 1


class TestWireProtocol:
    def test_point_round_trip_preserves_identity_and_key(self):
        [point] = _grid(values=(4,))
        rebuilt = point_from_wire(point_to_wire(point))
        assert rebuilt.label == point.label
        assert rebuilt.axis == point.axis
        assert repr(rebuilt.value) == repr(point.value)
        assert rebuilt.engine == point.engine
        assert point_key(rebuilt.spec, engine=rebuilt.engine) == point_key(
            point.spec, engine=point.engine
        )

    def test_wire_point_validation(self):
        [point] = _grid(values=(4,))
        wire = point_to_wire(point)
        with pytest.raises(ConfigError, match="fields"):
            point_from_wire({k: v for k, v in wire.items() if k != "spec"})
        with pytest.raises(ConfigError, match="engine"):
            point_from_wire({**wire, "engine": "warp"})

    def test_wire_point_is_picklable(self):
        import pickle

        [point] = _grid(values=(4,))
        rebuilt = point_from_wire(point_to_wire(point))
        clone = pickle.loads(pickle.dumps(rebuilt))
        assert repr(clone.value) == repr(point.value)


class TestServingAcceptance:
    """The tentpole's asserted behaviours, end-to-end over the socket."""

    def test_second_pass_is_all_cache_hits_and_bit_identical(self, served):
        _server, client = served
        grid = _grid()
        first = client.submit(grid)
        assert first.sources == ("run",) * len(grid)
        assert first.misses == len(grid) and first.hits == 0
        second = client.submit(grid)
        assert second.sources == ("store",) * len(grid)
        assert second.hit_rate == 1.0
        assert second.records == first.records
        assert [r.content_key() for r in second.records] == [
            r.content_key() for r in first.records
        ]

    def test_mixed_submission_runs_only_cold_points(self, served):
        server, client = served
        client.submit(_grid(values=(1, 2)))
        mixed = client.submit(_grid(values=(1, 2, 4, 8)))
        assert mixed.sources == ("store", "store", "run", "run")
        assert mixed.hits == 2 and mixed.misses == 2
        stats = server.stats()
        assert stats["misses"] == 4  # 2 cold + 2 new, never re-run

    def test_records_carry_the_requesters_labels(self, served):
        """A cache replay takes the submitting grid's identity."""
        _server, client = served
        spec = paper_topology(workload=single_master_workload(15))
        first = client.submit(
            sweep(spec, axis="write_buffer_depth", values=(4,))
        )
        relabeled = client.submit(
            sweep(
                spec,
                axis="write_buffer_depth",
                values=(4,),
                labels=("depth-four",),
            )
        )
        assert relabeled.sources == ("store",)
        [a], [b] = first.records, relabeled.records
        assert b.label == "depth-four" and a.label == "write_buffer_depth=4"
        assert b.cycles == a.cycles and b.transactions == a.transactions

    def test_max_cycles_participates_in_the_key(self, served):
        _server, client = served
        grid = _grid(values=(4,))
        bounded = client.submit(grid, max_cycles=200_000)
        unbounded = client.submit(grid)
        assert bounded.sources == ("run",)
        assert unbounded.sources == ("run",)  # different content key
        assert client.submit(grid, max_cycles=200_000).sources == ("store",)

    def test_concurrent_duplicate_submissions(self, served):
        """A burst of identical grids from many clients: one simulation."""
        server, _client = served
        grid = _grid()
        results = []
        errors = []

        def worker():
            try:
                results.append(ServeClient(*server.address).submit(grid))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 6
        reference = results[0].records
        for result in results[1:]:
            assert result.records == reference
        stats = server.stats()
        # Every point simulated exactly once; the other 5 submissions
        # were store or in-flight hits.
        assert stats["misses"] == len(grid)
        assert stats["hits"] == 5 * len(grid)

    def test_status_ping_and_queue_metrics(self, served):
        server, client = served
        assert client.ping() == PROTOCOL
        client.submit(_grid())
        status = client.status()
        assert status["stats"]["submissions"] == 1
        assert status["stats"]["max_queue_depth"] >= 1
        assert status["stats"]["queue_depth"] == 0  # drained
        assert status["store"]["entries"] == 3
        assert server.queue_depth() == 0

    def test_unknown_op_and_empty_submit_answer_with_errors(self, served):
        server, _client = served
        import socket

        with socket.create_connection(server.address, timeout=10) as sock:
            reader = sock.makefile("r", encoding="utf-8")
            writer = sock.makefile("w", encoding="utf-8")
            writer.write(json.dumps({"op": "teleport"}) + "\n")
            writer.flush()
            event = json.loads(reader.readline())
            assert event["event"] == "error" and "teleport" in event["message"]
            # The connection survives a bad op; an empty submit errors too.
            writer.write(json.dumps({"op": "submit", "points": []}) + "\n")
            writer.flush()
            event = json.loads(reader.readline())
            assert event["event"] == "error"

    def test_shutdown_via_client(self):
        with SweepServer() as server:
            client = ServeClient(*server.address)
            assert client.shutdown()
            assert server.wait(timeout=10.0)
            with pytest.raises((SimulationError, OSError)):
                client.ping()


class TestFailureRowsNotAuthoritative:
    """Satellite: a retry after a transient crash re-runs the point."""

    def _crashing_grid(self):
        spec = paper_topology(workload=single_master_workload(12))
        return sweep(spec, axis="engine", values=("rtl",))

    def test_crash_row_returned_but_not_cached(self, served):
        server, client = served
        grid = self._crashing_grid()
        # 3 cycles cannot drain anything: the RTL point raises.
        result = client.submit(grid, max_cycles=3)
        [record] = result.records
        assert record.failed and "SimulationError" in record.error
        assert result.sources == ("run",)
        assert len(server.store) == 0
        # The retry re-runs (a miss again), it does not replay the crash.
        retry = client.submit(grid, max_cycles=3)
        assert retry.sources == ("run",)
        assert retry.records[0].failed
        assert server.stats()["failure_rows"] == 2
        # A successful run under a workable ceiling does get cached.
        good = client.submit(grid, max_cycles=1_000_000)
        assert not good.records[0].failed
        assert client.submit(grid, max_cycles=1_000_000).sources == ("store",)


class TestRoutingUnit:
    """Deterministic in-flight dedupe, without socket timing races."""

    def test_inflight_duplicates_join_the_running_point(self):
        server = SweepServer()  # not started: executor stays parked
        grid = _grid(values=(4,))
        [(point1, key1, source1, pending1)] = server.route(grid)
        [(_point2, key2, source2, pending2)] = server.route(grid)
        assert source1 == "run" and source2 == "inflight"
        assert key1 == key2 and pending1 is pending2
        assert server.queue_depth() == 1
        # Drain the queue by hand (the executor thread is not running).
        batch = server._work.get_nowait()
        server._run_batch(batch)
        assert pending1.wait().transactions > 0
        assert server.queue_depth() == 0
        # Resolved work is now a store hit for everyone.
        [(_point3, _key3, source3, record)] = server.route(grid)
        assert source3 == "store"
        assert record == pending1.record

    def test_route_after_stop_is_refused(self):
        server = SweepServer()
        server.start()
        server.stop()
        with pytest.raises(ConfigError, match="stopped"):
            server.route(_grid(values=(4,)))

    def test_stop_fails_leftover_pendings(self):
        server = SweepServer()  # executor parked: pendings never resolve
        [(point, _key, _source, pending)] = server.route(_grid(values=(4,)))
        server._stopped.set()
        server._work.put(None)
        with server._lock:
            leftovers = list(server._inflight.items())
            server._inflight.clear()
        for _k, p in leftovers:
            p.record = RunRecord.from_error(p.point, "server stopped")
            p.event.set()
        assert pending.wait().failed


class TestBatchRouting:
    """Eligible coalesced bursts run through the lockstep backend."""

    def test_auto_backend_prefers_batch(self):
        from repro.exec import HAVE_NUMPY

        server = SweepServer()
        expected = "batch" if HAVE_NUMPY else "serial"
        assert server.runner.backend == expected

    def test_eligible_burst_is_lockstepped(self, served):
        pytest.importorskip("numpy")
        server, client = served
        result = client.submit(_grid())
        assert not any(r.failed for r in result.records)
        stats = server.stats()
        assert stats["bursts"] >= 1
        assert stats["dispatch"].get("batch", 0) == 3
        # Each burst reports how its points were served.
        assert sum(b.get("batch", 0) for b in stats["burst_backends"]) == 3

    def test_mixed_burst_reports_fallback(self, served):
        pytest.importorskip("numpy")
        server, client = served
        spec = paper_topology(workload=single_master_workload(15))
        grid = sweep(spec, axis="engine", values=("tlm", "plain"))
        client.submit(grid)
        dispatch = server.stats()["dispatch"]
        assert dispatch.get("batch", 0) == 1
        assert dispatch.get("serial-fallback", 0) == 1

    def test_batch_served_records_match_serial(self, served):
        pytest.importorskip("numpy")
        _server, client = served
        grid = _grid()
        served_records = list(client.submit(grid).records)
        assert served_records == SweepRunner(backend="serial").run(grid)

    def test_explicit_serial_backend_still_works(self):
        with SweepServer(backend="serial") as server:
            client = ServeClient(*server.address)
            client.submit(_grid(values=(1, 2)))
            stats = server.stats()
            assert stats["backend"] == "serial"
            assert stats["dispatch"] == {"serial": 2}


class TestPersistenceAcrossRestart:
    def test_new_server_on_same_store_starts_warm(self, tmp_path):
        path = tmp_path / "results.jsonl"
        grid = _grid()
        with SweepServer(store=ResultStore(path)) as server:
            first = ServeClient(*server.address).submit(grid)
        with SweepServer(store=ResultStore(path)) as server:
            second = ServeClient(*server.address).submit(grid)
        assert second.sources == ("store",) * len(grid)
        assert second.records == first.records


class TestCli:
    """`python -m repro.serve` end-to-end: serve, submit, status, shutdown."""

    def _run(self, *argv, timeout=120):
        return subprocess.run(
            [sys.executable, "-m", "repro.serve", *argv],
            capture_output=True,
            text=True,
            timeout=timeout,
            cwd=str(REPO),
            env={
                "PYTHONPATH": str(REPO / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    def test_full_cli_session(self, tmp_path):
        store = tmp_path / "results.jsonl"
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "serve",
                "--port",
                "0",
                "--store",
                str(store),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=str(REPO),
            env={
                "PYTHONPATH": str(REPO / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )
        try:
            banner = daemon.stdout.readline()
            assert "listening on" in banner, banner
            port = banner.split("listening on ")[1].split()[0].split(":")[1]
            submit_args = (
                "submit",
                "--port",
                port,
                "--transactions",
                "15",
                "--values",
                "1,4",
            )
            cold = self._run(*submit_args)
            assert cold.returncode == 0, cold.stderr
            assert "2 simulated" in cold.stdout
            warm = self._run(*submit_args)
            assert warm.returncode == 0, warm.stderr
            assert "hit rate 100%" in warm.stdout
            status = self._run("status", "--port", port)
            assert status.returncode == 0, status.stderr
            payload = json.loads(status.stdout)
            assert payload["stats"]["hits"] == 2
            assert payload["store"]["entries"] == 2
            bye = self._run("shutdown", "--port", port)
            assert bye.returncode == 0, bye.stderr
            daemon.wait(timeout=30)
            assert daemon.returncode == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    def test_submit_against_dead_server_fails_cleanly(self):
        result = self._run("status", "--port", "1", timeout=60)
        assert result.returncode == 1
        assert "error:" in result.stderr
