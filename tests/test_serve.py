"""The serving layer: store, protocol, server, client, CLI.

Pins the tentpole acceptance criteria: a grid submitted twice through
the server returns bit-identical records with a 100 % cache hit-rate on
the second pass; a mixed warm/cold submission runs only the cold
points; in-flight duplicates join the running point instead of
re-running; and crash/timeout rows are never cached as authoritative
results (a retry re-runs the point).
"""

import json
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro.core  # noqa: F401  (anchor package import order)
from repro.errors import ConfigError, SimulationError
from repro.exec import RunRecord, SweepRunner, point_key
from repro.serve import (
    PROTOCOL,
    Journal,
    ResultStore,
    ServeClient,
    ServerDraining,
    ServerOverloaded,
    SweepServer,
    heal_torn_tail,
    point_from_wire,
    point_to_wire,
)
from repro.system import paper_topology, sweep
from repro.traffic import single_master_workload

REPO = Path(__file__).resolve().parent.parent


def _grid(transactions=15, values=(1, 2, 4)):
    spec = paper_topology(workload=single_master_workload(transactions))
    return sweep(spec, axis="write_buffer_depth", values=values)


def _one_record(transactions=10):
    [record] = SweepRunner().run(_grid(transactions, values=(4,)))
    return record


@pytest.fixture()
def served():
    """A running in-process server plus a connected client."""
    with SweepServer() as server:
        yield server, ServeClient(*server.address)


class TestResultStore:
    def test_put_get_and_first_write_wins(self):
        store = ResultStore()
        record = _one_record()
        assert store.put("k1", record)
        assert store.get("k1") == record
        assert not store.put("k1", record)  # duplicate filing refused
        assert len(store) == 1 and "k1" in store

    def test_persists_and_reloads(self, tmp_path):
        path = tmp_path / "results.jsonl"
        record = _one_record()
        store = ResultStore(path)
        store.put("k1", record)
        reopened = ResultStore(path)
        assert reopened.get("k1") == record
        assert reopened.get("k1").content_key() == record.content_key()
        assert reopened.stats()["entries"] == 1

    def test_corrupt_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put("k1", _one_record())
        with path.open("a") as handle:
            handle.write('{"key": "k2", "rec')  # crash mid-append
        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.skipped_lines == 1

    def test_failure_rows_are_never_cached(self):
        """Satellite: crash/timeout records must not become authoritative."""
        [point] = _grid(values=(4,))
        store = ResultStore()
        crash = RunRecord.from_error(point, "SimulationError: boom")
        timeout = RunRecord.from_error(point, "timeout: no result within 2s")
        assert not store.put("crash", crash)
        assert not store.put("timeout", timeout)
        assert store.get("crash") is None and store.get("timeout") is None
        assert len(store) == 0
        assert store.rejected_failures == 2

    def test_failure_rows_in_file_dropped_on_load(self, tmp_path):
        path = tmp_path / "results.jsonl"
        [point] = _grid(values=(4,))
        bad = RunRecord.from_error(point, "timeout: hand-edited store")
        path.write_text(
            json.dumps({"key": "bad", "record": bad.to_dict()}) + "\n"
        )
        store = ResultStore(path)
        assert store.get("bad") is None
        assert store.rejected_failures == 1


class TestWireProtocol:
    def test_point_round_trip_preserves_identity_and_key(self):
        [point] = _grid(values=(4,))
        rebuilt = point_from_wire(point_to_wire(point))
        assert rebuilt.label == point.label
        assert rebuilt.axis == point.axis
        assert repr(rebuilt.value) == repr(point.value)
        assert rebuilt.engine == point.engine
        assert point_key(rebuilt.spec, engine=rebuilt.engine) == point_key(
            point.spec, engine=point.engine
        )

    def test_wire_point_validation(self):
        [point] = _grid(values=(4,))
        wire = point_to_wire(point)
        with pytest.raises(ConfigError, match="fields"):
            point_from_wire({k: v for k, v in wire.items() if k != "spec"})
        with pytest.raises(ConfigError, match="engine"):
            point_from_wire({**wire, "engine": "warp"})

    def test_wire_point_is_picklable(self):
        import pickle

        [point] = _grid(values=(4,))
        rebuilt = point_from_wire(point_to_wire(point))
        clone = pickle.loads(pickle.dumps(rebuilt))
        assert repr(clone.value) == repr(point.value)


class TestServingAcceptance:
    """The tentpole's asserted behaviours, end-to-end over the socket."""

    def test_second_pass_is_all_cache_hits_and_bit_identical(self, served):
        _server, client = served
        grid = _grid()
        first = client.submit(grid)
        assert first.sources == ("run",) * len(grid)
        assert first.misses == len(grid) and first.hits == 0
        second = client.submit(grid)
        assert second.sources == ("store",) * len(grid)
        assert second.hit_rate == 1.0
        assert second.records == first.records
        assert [r.content_key() for r in second.records] == [
            r.content_key() for r in first.records
        ]

    def test_mixed_submission_runs_only_cold_points(self, served):
        server, client = served
        client.submit(_grid(values=(1, 2)))
        mixed = client.submit(_grid(values=(1, 2, 4, 8)))
        assert mixed.sources == ("store", "store", "run", "run")
        assert mixed.hits == 2 and mixed.misses == 2
        stats = server.stats()
        assert stats["misses"] == 4  # 2 cold + 2 new, never re-run

    def test_records_carry_the_requesters_labels(self, served):
        """A cache replay takes the submitting grid's identity."""
        _server, client = served
        spec = paper_topology(workload=single_master_workload(15))
        first = client.submit(
            sweep(spec, axis="write_buffer_depth", values=(4,))
        )
        relabeled = client.submit(
            sweep(
                spec,
                axis="write_buffer_depth",
                values=(4,),
                labels=("depth-four",),
            )
        )
        assert relabeled.sources == ("store",)
        [a], [b] = first.records, relabeled.records
        assert b.label == "depth-four" and a.label == "write_buffer_depth=4"
        assert b.cycles == a.cycles and b.transactions == a.transactions

    def test_max_cycles_participates_in_the_key(self, served):
        _server, client = served
        grid = _grid(values=(4,))
        bounded = client.submit(grid, max_cycles=200_000)
        unbounded = client.submit(grid)
        assert bounded.sources == ("run",)
        assert unbounded.sources == ("run",)  # different content key
        assert client.submit(grid, max_cycles=200_000).sources == ("store",)

    def test_concurrent_duplicate_submissions(self, served):
        """A burst of identical grids from many clients: one simulation."""
        server, _client = served
        grid = _grid()
        results = []
        errors = []

        def worker():
            try:
                results.append(ServeClient(*server.address).submit(grid))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 6
        reference = results[0].records
        for result in results[1:]:
            assert result.records == reference
        stats = server.stats()
        # Every point simulated exactly once; the other 5 submissions
        # were store or in-flight hits.
        assert stats["misses"] == len(grid)
        assert stats["hits"] == 5 * len(grid)

    def test_status_ping_and_queue_metrics(self, served):
        server, client = served
        assert client.ping() == PROTOCOL
        client.submit(_grid())
        status = client.status()
        assert status["stats"]["submissions"] == 1
        assert status["stats"]["max_queue_depth"] >= 1
        assert status["stats"]["queue_depth"] == 0  # drained
        assert status["store"]["entries"] == 3
        assert server.queue_depth() == 0

    def test_unknown_op_and_empty_submit_answer_with_errors(self, served):
        server, _client = served
        import socket

        with socket.create_connection(server.address, timeout=10) as sock:
            reader = sock.makefile("r", encoding="utf-8")
            writer = sock.makefile("w", encoding="utf-8")
            writer.write(json.dumps({"op": "teleport"}) + "\n")
            writer.flush()
            event = json.loads(reader.readline())
            assert event["event"] == "error" and "teleport" in event["message"]
            # The connection survives a bad op; an empty submit errors too.
            writer.write(json.dumps({"op": "submit", "points": []}) + "\n")
            writer.flush()
            event = json.loads(reader.readline())
            assert event["event"] == "error"

    def test_shutdown_via_client(self):
        with SweepServer() as server:
            client = ServeClient(*server.address)
            assert client.shutdown()
            assert server.wait(timeout=10.0)
            with pytest.raises((SimulationError, OSError)):
                client.ping()


class TestFailureRowsNotAuthoritative:
    """Satellite: a retry after a transient crash re-runs the point."""

    def _crashing_grid(self):
        spec = paper_topology(workload=single_master_workload(12))
        return sweep(spec, axis="engine", values=("rtl",))

    def test_crash_row_returned_but_not_cached(self, served):
        server, client = served
        grid = self._crashing_grid()
        # 3 cycles cannot drain anything: the RTL point raises.
        result = client.submit(grid, max_cycles=3)
        [record] = result.records
        assert record.failed and "SimulationError" in record.error
        assert result.sources == ("run",)
        assert len(server.store) == 0
        # The retry re-runs (a miss again), it does not replay the crash.
        retry = client.submit(grid, max_cycles=3)
        assert retry.sources == ("run",)
        assert retry.records[0].failed
        assert server.stats()["failure_rows"] == 2
        # A successful run under a workable ceiling does get cached.
        good = client.submit(grid, max_cycles=1_000_000)
        assert not good.records[0].failed
        assert client.submit(grid, max_cycles=1_000_000).sources == ("store",)


class TestRoutingUnit:
    """Deterministic in-flight dedupe, without socket timing races."""

    def test_inflight_duplicates_join_the_running_point(self):
        server = SweepServer()  # not started: executor stays parked
        grid = _grid(values=(4,))
        [(point1, key1, source1, pending1)] = server.route(grid)
        [(_point2, key2, source2, pending2)] = server.route(grid)
        assert source1 == "run" and source2 == "inflight"
        assert key1 == key2 and pending1 is pending2
        assert server.queue_depth() == 1
        # Drain the queue by hand (the executor thread is not running).
        batch = server._work.get_nowait()
        server._run_batch(batch)
        assert pending1.wait().transactions > 0
        assert server.queue_depth() == 0
        # Resolved work is now a store hit for everyone.
        [(_point3, _key3, source3, record)] = server.route(grid)
        assert source3 == "store"
        assert record == pending1.record

    def test_route_after_stop_is_refused(self):
        server = SweepServer()
        server.start()
        server.stop()
        with pytest.raises(ServerDraining, match="draining"):
            server.route(_grid(values=(4,)))

    def test_stop_fails_leftover_pendings(self):
        server = SweepServer()  # executor parked: pendings never resolve
        [(point, _key, _source, pending)] = server.route(_grid(values=(4,)))
        server._stopped.set()
        server._work.put(None)
        with server._lock:
            leftovers = list(server._inflight.items())
            server._inflight.clear()
        for _k, p in leftovers:
            p.record = RunRecord.from_error(p.point, "server stopped")
            p.event.set()
        assert pending.wait().failed


class TestBatchRouting:
    """Eligible coalesced bursts run through the lockstep backend."""

    def test_auto_backend_prefers_batch(self):
        from repro.exec import HAVE_NUMPY

        server = SweepServer()
        expected = "batch" if HAVE_NUMPY else "serial"
        assert server.runner.backend == expected

    def test_eligible_burst_is_lockstepped(self, served):
        pytest.importorskip("numpy")
        server, client = served
        result = client.submit(_grid())
        assert not any(r.failed for r in result.records)
        stats = server.stats()
        assert stats["bursts"] >= 1
        assert stats["dispatch"].get("batch", 0) == 3
        # Each burst reports how its points were served.
        assert sum(b.get("batch", 0) for b in stats["burst_backends"]) == 3

    def test_mixed_burst_reports_fallback(self, served):
        pytest.importorskip("numpy")
        server, client = served
        spec = paper_topology(workload=single_master_workload(15))
        grid = sweep(spec, axis="engine", values=("tlm", "plain"))
        client.submit(grid)
        dispatch = server.stats()["dispatch"]
        assert dispatch.get("batch", 0) == 1
        assert dispatch.get("serial-fallback", 0) == 1

    def test_batch_served_records_match_serial(self, served):
        pytest.importorskip("numpy")
        _server, client = served
        grid = _grid()
        served_records = list(client.submit(grid).records)
        assert served_records == SweepRunner(backend="serial").run(grid)

    def test_explicit_serial_backend_still_works(self):
        with SweepServer(backend="serial") as server:
            client = ServeClient(*server.address)
            client.submit(_grid(values=(1, 2)))
            stats = server.stats()
            assert stats["backend"] == "serial"
            assert stats["dispatch"] == {"serial": 2}


class TestPersistenceAcrossRestart:
    def test_new_server_on_same_store_starts_warm(self, tmp_path):
        path = tmp_path / "results.jsonl"
        grid = _grid()
        with SweepServer(store=ResultStore(path)) as server:
            first = ServeClient(*server.address).submit(grid)
        with SweepServer(store=ResultStore(path)) as server:
            second = ServeClient(*server.address).submit(grid)
        assert second.sources == ("store",) * len(grid)
        assert second.records == first.records


class TestCli:
    """`python -m repro.serve` end-to-end: serve, submit, status, shutdown."""

    def _run(self, *argv, timeout=120):
        return subprocess.run(
            [sys.executable, "-m", "repro.serve", *argv],
            capture_output=True,
            text=True,
            timeout=timeout,
            cwd=str(REPO),
            env={
                "PYTHONPATH": str(REPO / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    def test_full_cli_session(self, tmp_path):
        store = tmp_path / "results.jsonl"
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "serve",
                "--port",
                "0",
                "--store",
                str(store),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=str(REPO),
            env={
                "PYTHONPATH": str(REPO / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )
        try:
            banner = daemon.stdout.readline()
            assert "listening on" in banner, banner
            port = banner.split("listening on ")[1].split()[0].split(":")[1]
            submit_args = (
                "submit",
                "--port",
                port,
                "--transactions",
                "15",
                "--values",
                "1,4",
            )
            cold = self._run(*submit_args)
            assert cold.returncode == 0, cold.stderr
            assert "2 simulated" in cold.stdout
            warm = self._run(*submit_args)
            assert warm.returncode == 0, warm.stderr
            assert "hit rate 100%" in warm.stdout
            status = self._run("status", "--port", port, "--json")
            assert status.returncode == 0, status.stderr
            payload = json.loads(status.stdout)
            assert payload["stats"]["hits"] == 2
            assert payload["store"]["entries"] == 2
            assert payload["stats"]["uptime_seconds"] >= 0.0
            assert payload["stats"]["draining"] is False
            assert payload["stats"]["quarantine"] == []
            assert payload["journal"]["pending"] == 0
            human = self._run("status", "--port", port)
            assert human.returncode == 0, human.stderr
            assert "quarantine:" in human.stdout
            assert "journal:" in human.stdout
            bye = self._run("shutdown", "--port", port)
            assert bye.returncode == 0, bye.stderr
            daemon.wait(timeout=30)
            assert daemon.returncode == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    def test_submit_against_dead_server_fails_cleanly(self):
        result = self._run("status", "--port", "1", timeout=60)
        assert result.returncode == 1
        assert "error:" in result.stderr


def _wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class _Rng:
    """Deterministic ``random()`` source for backoff tests."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0) if self.values else 0.0


class TestJournal:
    """The write-ahead log: pending work, crash counts, durability."""

    def _accept_one(self, journal, value=4):
        [point] = _grid(values=(value,))
        key = point_key(point.spec, engine=point.engine, max_cycles=None)
        journal.record_accept(key, point_to_wire(point), None)
        return key

    def test_accept_start_done_lifecycle(self):
        journal = Journal()
        key = self._accept_one(journal)
        assert len(journal) == 1
        [(pending_key, wire, ceiling)] = journal.pending()
        assert pending_key == key and ceiling is None
        assert wire["label"] == "write_buffer_depth=4"
        journal.record_start(key)
        journal.record_done(key)
        assert journal.pending() == [] and len(journal) == 0
        journal.record_done(key)  # idempotent: recovery may re-mark
        assert journal.stats()["completed"] == 1

    def test_fail_counts_and_done_resets_the_streak(self):
        journal = Journal()
        key = self._accept_one(journal)
        journal.record_fail(key, "boom")
        self._accept_one(journal)
        journal.record_fail(key, "boom again")
        assert journal.crash_count(key) == 2
        assert journal.quarantined(threshold=2) == [key]
        self._accept_one(journal)
        journal.record_start(key)
        journal.record_done(key)
        assert journal.crash_count(key) == 0
        assert journal.quarantined(threshold=2) == []

    def test_persists_and_reloads_pending_work(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        key = self._accept_one(journal)
        done_key = self._accept_one(journal, value=8)
        journal.record_start(done_key)
        journal.record_done(done_key)
        reopened = Journal(path)
        [(pending_key, wire, _ceiling)] = reopened.pending()
        assert pending_key == key
        assert point_from_wire(wire).label == "write_buffer_depth=4"
        assert reopened.stats()["completed"] == 1

    def test_interrupted_start_counts_as_a_crash_on_replay(self, tmp_path):
        """A start with no terminal mark means the server died mid-attempt."""
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        key = self._accept_one(journal)
        journal.record_start(key)  # ... and then the process was killed
        reopened = Journal(path)
        assert reopened.crash_count(key) == 1
        assert [k for k, _w, _c in reopened.pending()] == [key]
        # A live attempt in the same process is NOT a crash.
        assert journal.crash_count(key) == 0

    def test_torn_tail_tolerated_and_healed(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        key = self._accept_one(journal)
        with path.open("a") as handle:
            handle.write('{"op": "sta')  # crash mid-append
        reopened = Journal(path)
        assert reopened.skipped_lines == 1
        assert [k for k, _w, _c in reopened.pending()] == [key]
        # The next append heals the torn line instead of merging into it.
        reopened.record_start(key)
        again = Journal(path)
        assert again.skipped_lines == 1
        assert again.crash_count(key) == 1  # the healed start replayed


class TestConcurrentWriters:
    """Satellite: two servers on one store path, one crashing mid-append."""

    def test_corrupt_tail_from_crashed_second_writer(self, tmp_path):
        path = tmp_path / "results.jsonl"
        survivor = ResultStore(path)
        survivor.put("k1", _one_record())
        # A second server holding the same path crashes mid-append,
        # leaving a torn line with no trailing newline...
        with path.open("a") as handle:
            handle.write('{"key": "k2", "rec')
        # ...and the survivor's next append must not merge into it.
        assert survivor.put("k3", _one_record())
        reopened = ResultStore(path)
        assert reopened.get("k1") is not None
        assert reopened.get("k3") is not None
        assert reopened.get("k2") is None
        assert reopened.skipped_lines == 1  # only the torn fragment lost

    def test_heal_torn_tail_is_idempotent(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"key": "k1"')  # no newline
        assert heal_torn_tail(path) is True
        assert heal_torn_tail(path) is False  # already terminated
        assert path.read_text().endswith("\n")

    def test_first_write_wins_across_writers_on_load(self, tmp_path):
        """Duplicate key lines on disk: the earliest one is authoritative."""
        path = tmp_path / "results.jsonl"
        first, second = _one_record(), _one_record(transactions=11)
        with path.open("w") as handle:
            handle.write(json.dumps({"key": "k", "record": first.to_dict()}))
            handle.write("\n")
            handle.write(json.dumps({"key": "k", "record": second.to_dict()}))
            handle.write("\n")
        store = ResultStore(path)
        assert store.get("k") == first
        assert len(store) == 1


class TestCrashRecovery:
    """Tentpole: journaled work re-runs after a crash, bit-identically."""

    def test_accepted_but_unexecuted_work_reruns_on_restart(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        journal_path = tmp_path / "journal.jsonl"
        grid = _grid()
        # Server 1 accepts and journals the grid but is never started:
        # its executor never runs — the moral equivalent of kill -9
        # right after the accepts hit the journal.
        crashed = SweepServer(
            store=ResultStore(store_path), journal=Journal(journal_path)
        )
        crashed.route(grid)
        assert len(Journal(journal_path)) == len(grid)
        # Server 2 on the same store+journal recovers automatically.
        with SweepServer(
            store=ResultStore(store_path), journal=Journal(journal_path)
        ) as recovered:
            assert _wait_until(lambda: len(recovered.store) == len(grid))
            assert _wait_until(lambda: len(recovered.journal) == 0)
            result = ServeClient(*recovered.address).submit(grid)
            stats = recovered.stats()
        assert result.sources == ("store",) * len(grid)
        baseline = SweepRunner(backend="serial").run(grid)
        assert list(result.records) == baseline  # equality excludes wall time
        assert stats["recovered_rerun"] == len(grid)

    def test_finished_work_replays_from_store_not_rerun(self, tmp_path):
        """A result that landed without its done mark replays for free."""
        store_path = tmp_path / "results.jsonl"
        journal_path = tmp_path / "journal.jsonl"
        [point] = _grid(values=(4,))
        key = point_key(point.spec, engine=point.engine, max_cycles=None)
        store = ResultStore(store_path)
        store.put(key, _one_record(transactions=15))
        journal = Journal(journal_path)
        journal.record_accept(key, point_to_wire(point), None)
        journal.record_start(key)  # killed between store.put and done mark
        with SweepServer(
            store=ResultStore(store_path), journal=Journal(journal_path)
        ) as server:
            stats = server.stats()
            assert stats["recovery_replayed"] == 1
            assert stats["recovered_rerun"] == 0
            assert len(server.journal) == 0  # done mark was re-stamped

    def test_unrecoverable_accept_entry_is_failed_not_fatal(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = Journal(journal_path)
        journal.record_accept("badkey", {"label": "broken"}, None)
        with SweepServer(journal=Journal(journal_path)) as server:
            assert len(server.journal) == 0
            assert server.journal.crash_count("badkey") == 1


class TestDrain:
    """Tentpole: graceful draining refuses, finishes, journals the rest."""

    def test_route_refused_while_draining(self):
        server = SweepServer()
        server._draining.set()
        with pytest.raises(ServerDraining, match="draining"):
            server.route(_grid(values=(4,)))
        server._draining.clear()

    def test_drain_keeps_queued_work_journaled(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        # Executor parked (never started): routed work stays queued.
        server = SweepServer(journal=Journal(journal_path))
        outcomes = server.route(_grid(values=(2, 4)))
        server.drain(timeout=0.5)
        for _point, _key, _source, pending in outcomes:
            record = pending.wait()
            assert record.failed
            assert "journaled" in record.error
        assert len(Journal(journal_path)) == 2  # pending for the next start
        assert server.stats()["draining"] is True

    def test_drain_op_over_the_wire(self):
        with SweepServer() as server:
            client = ServeClient(*server.address)
            warm = client.submit(_grid(values=(4,)))
            assert not warm.records[0].failed
            assert client.drain() is True
            assert _wait_until(server._stopped.is_set, timeout=10)

    def test_sigterm_drains_the_cli_daemon(self, tmp_path):
        import signal as _signal

        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "serve",
                "--port",
                "0",
                "--journal",
                str(tmp_path / "journal.jsonl"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=str(REPO),
            env={
                "PYTHONPATH": str(REPO / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )
        try:
            banner = daemon.stdout.readline()
            assert "listening on" in banner, banner
            daemon.send_signal(_signal.SIGTERM)
            daemon.wait(timeout=30)
            assert daemon.returncode == 0
            tail = daemon.stdout.read()
            assert "draining" in tail and "stopped" in tail
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


class TestBackpressure:
    """Tentpole: bounded queueing with structured overload shedding."""

    def test_submission_past_the_bound_is_shed_whole(self):
        # Executor parked: accepted work stays queued forever.
        server = SweepServer(max_queue_depth=1)
        server.route(_grid(values=(4,)))
        journaled = len(server.journal)
        with pytest.raises(ServerOverloaded) as caught:
            server.route(_grid(values=(1, 2)))
        assert caught.value.retry_after > 0
        assert caught.value.queue_depth == 1
        # Refused whole: nothing from the shed submission was journaled.
        assert len(server.journal) == journaled
        stats = server.stats()
        assert stats["shed_submissions"] == 1
        assert stats["shed_points"] == 2
        assert stats["retry_after_hint"] > 0

    def test_warm_points_do_not_count_toward_the_bound(self, served):
        server, client = served
        grid = _grid(values=(1, 2, 4))
        client.submit(grid)
        # Everything is cached now: a tiny bound still admits the grid.
        server.max_queue_depth = 1
        result = client.submit(grid)
        assert result.hits == len(grid)

    def test_overloaded_event_over_the_wire(self, served):
        server, client = served
        server.max_queue_depth = 1
        # Fake a full queue (inert occupiers, nothing runs), then ask
        # for more cold points than the bound admits — via a raw socket
        # so the structured event itself is visible.
        sock = socket.create_connection(server.address, timeout=10)
        try:
            with server._lock:
                for index in range(2):
                    server._inflight[f"occupier-{index}"] = _FakePending()
            writer = sock.makefile("w")
            reader = sock.makefile("r")
            payload = {
                "op": "submit",
                "points": [point_to_wire(p) for p in _grid(values=(1, 2))],
                "max_cycles": None,
            }
            writer.write(json.dumps(payload) + "\n")
            writer.flush()
            event = json.loads(reader.readline())
            assert event["event"] == "overloaded"
            assert event["retry_after"] > 0
            assert event["queue_depth"] == 2
            # The connection survives an overload refusal.
            writer.write(json.dumps({"op": "ping"}) + "\n")
            writer.flush()
            assert json.loads(reader.readline())["event"] == "pong"
        finally:
            sock.close()
            with server._lock:
                server._inflight.clear()


class _FakePending:
    """Inert queue occupier for backpressure tests."""


class TestQuarantine:
    """Tentpole: repeatedly-crashing points are parked, not re-run."""

    def _poison(self):
        spec = paper_topology(workload=single_master_workload(12))
        return sweep(spec, axis="engine", values=("rtl",))

    def test_point_parked_after_threshold_crashes(self):
        with SweepServer(quarantine_threshold=2) as server:
            client = ServeClient(*server.address)
            poison = self._poison()
            for _attempt in range(2):
                result = client.submit(poison, max_cycles=3)
                assert result.records[0].failed
                assert result.quarantined == 0
            parked = client.submit(poison, max_cycles=3)
            assert parked.quarantined == 1
            assert parked.sources == ("quarantined",)
            assert "quarantined" in parked.records[0].error
            [entry] = server.quarantine()
            assert entry["crashes"] >= 2
            assert entry["label"] == poison[0].label
            status = client.status()
            assert status["stats"]["quarantine"] == server.quarantine()
            assert status["stats"]["quarantined_answers"] == 1

    def test_quarantine_survives_restart_via_journal(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        [point] = self._poison()
        key = point_key(point.spec, engine=point.engine, max_cycles=3)
        journal = Journal(journal_path)
        for _attempt in range(2):
            journal.record_accept(key, point_to_wire(point), 3)
            journal.record_fail(key, "SimulationError: ceiling")
        with SweepServer(
            journal=Journal(journal_path), quarantine_threshold=2
        ) as server:
            result = ServeClient(*server.address).submit([point], max_cycles=3)
            assert result.sources == ("quarantined",)
            assert server.stats()["recovered_rerun"] == 0

    def test_success_is_never_quarantined(self, served):
        server, client = served
        for _pass in range(4):
            result = client.submit(_grid(values=(4,)))
            assert not result.records[0].failed
        assert server.quarantine() == []


class TestClientResilience:
    """Tentpole: exponential backoff with jitter, idempotent teardown."""

    def test_knob_validation(self):
        with pytest.raises(ConfigError, match="port"):
            ServeClient(port=0)
        with pytest.raises(ConfigError, match="retries"):
            ServeClient(port=1, retries=-1)
        with pytest.raises(ConfigError, match="jitter"):
            ServeClient(port=1, jitter=1.5)

    def test_backoff_shape_and_jitter_down_only(self):
        client = ServeClient(
            port=1,
            backoff_base=0.1,
            backoff_max=1.0,
            jitter=0.5,
            rng=_Rng([0.0, 1.0, 0.0]),
        )
        assert client._backoff_delay(0, 0.0) == pytest.approx(0.1)
        # Full jitter shaves half the delay off, never adds.
        assert client._backoff_delay(1, 0.0) == pytest.approx(0.1)
        # The cap bounds the exponential; the server hint floors it.
        assert client._backoff_delay(10, 0.0) == pytest.approx(1.0)
        assert client._backoff_delay(0, 5.0) == pytest.approx(5.0)

    def test_connect_failures_retry_then_raise(self):
        sleeps = []
        client = ServeClient(
            port=1,  # nothing listens here
            retries=2,
            backoff_base=0.01,
            backoff_max=0.02,
            sleep=sleeps.append,
            rng=_Rng([0.0, 0.0]),
        )
        with pytest.raises(SimulationError, match="after 3 attempts"):
            client.ping()
        assert len(sleeps) == 2
        assert len(client.retry_log) == 2

    def _canned_server(self, scripts):
        """A fake daemon: per connection, read one line, play a script."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()

        def serve():
            for script in scripts:
                conn, _addr = listener.accept()
                with conn:
                    conn.makefile("r", encoding="utf-8").readline()
                    writer = conn.makefile("w", encoding="utf-8")
                    for event in script:
                        writer.write(json.dumps(event) + "\n")
                    writer.flush()
            listener.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return listener.getsockname()[1], thread

    def test_overloaded_retry_honours_the_servers_hint(self):
        record = _one_record()
        [point] = _grid(values=(4,))
        success = [
            {"event": "accepted", "job": 1, "points": 1},
            {
                "event": "result",
                "job": 1,
                "index": 0,
                "key": "k",
                "cached": True,
                "source": "store",
                "record": record.to_dict(),
            },
            {"event": "done", "job": 1, "hits": 1, "misses": 0},
        ]
        port, thread = self._canned_server(
            [
                [
                    {
                        "event": "overloaded",
                        "message": "queue full",
                        "retry_after": 0.7,
                        "queue_depth": 9,
                    }
                ],
                success,
            ]
        )
        sleeps = []
        client = ServeClient(
            port=port,
            retries=2,
            backoff_base=0.01,
            sleep=sleeps.append,
            rng=_Rng([0.0]),
        )
        result = client.submit([point])
        thread.join(timeout=10)
        assert result.hits == 1
        # The server's hint floors the backoff delay.
        assert sleeps == [pytest.approx(0.7)]
        [(reason, delay)] = client.retry_log
        assert "overloaded" in reason and delay == pytest.approx(0.7)

    def test_draining_response_is_retried(self):
        record = _one_record()
        [point] = _grid(values=(4,))
        success = [
            {"event": "accepted", "job": 1, "points": 1},
            {
                "event": "result",
                "job": 1,
                "index": 0,
                "key": "k",
                "cached": True,
                "source": "store",
                "record": record.to_dict(),
            },
            {"event": "done", "job": 1, "hits": 1, "misses": 0},
        ]
        port, thread = self._canned_server(
            [[{"event": "draining", "message": "going down"}], success]
        )
        client = ServeClient(
            port=port, retries=1, backoff_base=0.001, sleep=lambda _d: None
        )
        result = client.submit([point])
        thread.join(timeout=10)
        assert result.hits == 1
        assert "draining" in client.retry_log[0][0]

    def test_shutdown_and_drain_return_false_on_dead_server(self):
        """Satellite: idempotent teardown — no raise, just False."""
        client = ServeClient(port=1, retries=0)
        assert client.shutdown() is False
        assert client.drain() is False

    def test_shutdown_true_then_false_across_restart(self):
        with SweepServer() as server:
            client = ServeClient(*server.address)
            assert client.shutdown() is True
            assert _wait_until(server._stopped.is_set, timeout=10)
        assert client.shutdown() is False  # already gone: still no raise


class TestProtocolRobustness:
    """Satellite: malformed input gets error events, never thread death."""

    def _raw(self, address, payload, expect_reply=True, timeout=10):
        sock = socket.create_connection(address, timeout=timeout)
        try:
            sock.sendall(payload)
            if not expect_reply:
                return None
            reader = sock.makefile("r", encoding="utf-8")
            line = reader.readline()
            return json.loads(line) if line else None
        finally:
            sock.close()

    def test_unknown_request_fields_are_ignored(self, served):
        """Forward compatibility: a v3 client's extra fields are inert."""
        server, client = served
        payload = json.dumps(
            {
                "op": "submit",
                "points": [point_to_wire(p) for p in _grid(values=(4,))],
                "max_cycles": None,
                "retry_after": 1.5,  # not a request field; must be ignored
                "priority": "high",
            }
        ).encode() + b"\n"
        event = self._raw(server.address, payload)
        assert event["event"] == "accepted"
        assert client.ping() == PROTOCOL

    def test_malformed_json_line_answers_error(self, served):
        server, client = served
        event = self._raw(server.address, b"this is not json\n")
        assert event["event"] == "error"
        assert "malformed" in event["message"]
        assert client.ping() == PROTOCOL  # the server lived

    def test_truncated_submit_mid_line_during_drain(self, served):
        """A client dying mid-line while the server drains hurts nobody."""
        server, client = served
        server._draining.set()
        try:
            self._raw(
                server.address,
                b'{"op": "submit", "points": [{"lab',  # no newline: EOF
                expect_reply=False,
            )
            # The acceptor and its handler threads survived.
            status = client.status()
            assert status["stats"]["draining"] is True
        finally:
            server._draining.clear()

    def test_submit_during_drain_gets_structured_draining_event(self, served):
        server, client = served
        server._draining.set()
        try:
            payload = json.dumps(
                {
                    "op": "submit",
                    "points": [point_to_wire(p) for p in _grid(values=(4,))],
                }
            ).encode() + b"\n"
            event = self._raw(server.address, payload)
            assert event["event"] == "draining"
        finally:
            server._draining.clear()

    def test_bad_max_cycles_is_an_error_event(self, served):
        server, client = served
        payload = json.dumps(
            {
                "op": "submit",
                "points": [point_to_wire(p) for p in _grid(values=(4,))],
                "max_cycles": "many",
            }
        ).encode() + b"\n"
        event = self._raw(server.address, payload)
        assert event["event"] == "error"
        assert "max_cycles" in event["message"]
        assert client.ping() == PROTOCOL


class TestStatusSurface:
    """Satellite: machine-readable status with the supervision fields."""

    def test_stats_carry_the_supervision_block(self, served):
        server, client = served
        client.submit(_grid(values=(4,)))
        stats = client.status()["stats"]
        assert stats["uptime_seconds"] >= 0.0
        assert stats["queue_depth"] == 0
        assert stats["in_flight"] == 0
        assert stats["queue_bound"] == server.max_queue_depth
        assert stats["quarantine"] == []
        assert stats["quarantine_threshold"] == server.quarantine_threshold
        assert stats["draining"] is False and stats["stopped"] is False
        assert stats["retry_after_hint"] > 0
        assert stats["shed_submissions"] == 0
        assert stats["recovered_rerun"] == 0
        journal = client.status()["journal"]
        assert journal["pending"] == 0 and journal["completed"] == 1
