"""Tests for the AHB+ arbiter and write buffer."""

import pytest
from hypothesis import given, strategies as st

from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.ahb.types import AccessKind
from repro.core.arbiter import AhbPlusArbiter
from repro.core.filters import ArbitrationContext, Candidate, TieBreakFilter
from repro.core.write_buffer import WriteBuffer
from repro.errors import ConfigError, SimulationError


def write(master=0, addr=0x0, data=(1,), locked=False):
    return Transaction(
        master=master,
        kind=AccessKind.WRITE,
        addr=addr,
        beats=len(data),
        data=list(data),
        locked=locked,
    )


def read(master=0, addr=0x0, beats=1):
    return Transaction(master=master, kind=AccessKind.READ, addr=addr, beats=beats)


def cand(t, rt=False, deadline=None, wb=False):
    t.issued_at = max(t.issued_at, 0)
    return Candidate(txn=t, from_write_buffer=wb, real_time=rt, deadline=deadline)


class TestAhbPlusArbiter:
    def test_returns_single_winner(self):
        arb = AhbPlusArbiter(num_masters=4)
        winner = arb.choose(
            [cand(read(2)), cand(read(0)), cand(read(1))],
            ArbitrationContext(now=0),
        )
        assert winner.master == 0

    def test_urgent_rt_preempts(self):
        arb = AhbPlusArbiter(num_masters=4)
        winner = arb.choose(
            [cand(read(0)), cand(read(3), rt=True, deadline=20)],
            ArbitrationContext(now=0, urgency_margin=32),
        )
        assert winner.master == 3

    def test_no_candidates_raises(self):
        with pytest.raises(SimulationError):
            AhbPlusArbiter(num_masters=2).choose([], ArbitrationContext(now=0))

    def test_disable_filter_by_name(self):
        arb = AhbPlusArbiter(num_masters=2)
        arb.set_filter_enabled("real-time", False)
        assert not arb.filter_by_name("real-time").enabled

    def test_tie_break_cannot_be_disabled(self):
        arb = AhbPlusArbiter(num_masters=2)
        with pytest.raises(ConfigError):
            arb.set_filter_enabled("tie-break", False)

    def test_unknown_filter_rejected(self):
        with pytest.raises(ConfigError):
            AhbPlusArbiter(num_masters=2).set_filter_enabled("ouija", True)

    def test_chain_must_end_with_tie_break(self):
        with pytest.raises(ConfigError):
            AhbPlusArbiter(filters=[TieBreakFilter(), TieBreakFilter()][:1][:0])

    def test_filter_stats_exposed(self):
        arb = AhbPlusArbiter(num_masters=2)
        arb.choose([cand(read(0)), cand(read(1))], ArbitrationContext(now=0))
        stats = arb.filter_stats()
        assert stats["tie-break"]["applied"] == 1
        assert arb.rounds == 1


class TestWriteBuffer:
    def test_absorb_and_fifo_drain(self):
        buffer = WriteBuffer(depth=4)
        d1 = buffer.absorb(write(0, 0x0, (1,)), 5)
        d2 = buffer.absorb(write(1, 0x10, (2,)), 6)
        assert buffer.occupancy == 2
        assert buffer.head() is d1
        buffer.pop_head(d1)
        assert buffer.head() is d2
        assert d1.master == WRITE_BUFFER_MASTER
        assert d1.origin is not None

    def test_reject_reads_and_locked(self):
        buffer = WriteBuffer()
        assert not buffer.can_absorb(read())
        assert not buffer.can_absorb(write(locked=True))

    def test_full_rejects(self):
        buffer = WriteBuffer(depth=1)
        buffer.absorb(write(), 0)
        assert buffer.is_full
        assert not buffer.can_absorb(write())
        assert buffer.rejected_full == 1

    def test_disabled_rejects(self):
        assert not WriteBuffer(enabled=False).can_absorb(write())

    def test_absorb_unqualified_raises(self):
        with pytest.raises(SimulationError):
            WriteBuffer().absorb(read(), 0)

    def test_out_of_order_pop_raises(self):
        buffer = WriteBuffer()
        buffer.absorb(write(0), 0)
        d2 = buffer.absorb(write(1, 0x20), 0)
        with pytest.raises(SimulationError):
            buffer.pop_head(d2)

    def test_hazard_detection_overlap(self):
        buffer = WriteBuffer()
        buffer.absorb(write(0, 0x100, (1, 2, 3, 4)), 0)
        overlapping = read(1, 0x108)
        disjoint = read(1, 0x200)
        assert buffer.conflicts_with(overlapping)
        assert not buffer.conflicts_with(disjoint)
        assert buffer.hazard_hits == 1

    def test_writes_never_hazard(self):
        buffer = WriteBuffer()
        buffer.absorb(write(0, 0x100), 0)
        assert not buffer.conflicts_with(write(1, 0x100))

    def test_wrapping_read_hazards_below_its_start(self):
        """Fuzzer-found RAW bug: a wrap burst's footprint is the whole
        aligned block, so a wrapped read depends on buffered writes at
        addresses *below* its start — the linear [addr, addr+total)
        range used to miss them and serve the read stale memory."""
        buffer = WriteBuffer()
        # Posted write covering 0x280..0x28f.
        buffer.absorb(write(0, 0x280, (1, 2, 3, 4)), 0)
        # wrap8 x4B read starting at 0x290: wraps inside [0x280, 0x2a0).
        wrapped = Transaction(
            master=1, kind=AccessKind.READ, addr=0x290, beats=8, wrapping=True
        )
        assert buffer.conflicts_with(wrapped)
        # The linear range [0x290, 0x2b0) alone would be disjoint:
        linear = read(1, 0x290, beats=8)
        assert buffer.conflicts_with(linear) is False

    def test_wrapping_buffered_write_hazards_below_its_start(self):
        buffer = WriteBuffer()
        wrapped_write = Transaction(
            master=0,
            kind=AccessKind.WRITE,
            addr=0x298,
            beats=4,
            wrapping=True,
            data=[1, 2, 3, 4],
        )
        buffer.absorb(wrapped_write, 0)  # footprint [0x290, 0x2a0)
        assert buffer.conflicts_with(read(1, 0x294))
        assert not buffer.conflicts_with(read(1, 0x2A4))

    def test_stats(self):
        buffer = WriteBuffer(depth=2)
        d = buffer.absorb(write(), 0)
        buffer.absorb(write(1, 0x40), 0)
        buffer.pop_head(d)
        assert buffer.absorbed == 2
        assert buffer.drained == 1
        assert buffer.max_occupancy == 2

    def test_bad_depth(self):
        with pytest.raises(ConfigError):
            WriteBuffer(depth=0)

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=20))
    def test_drain_order_matches_absorb_order(self, addr_words):
        buffer = WriteBuffer(depth=len(addr_words))
        drains = [
            buffer.absorb(write(0, w * 4, (w,)), cycle)
            for cycle, w in enumerate(addr_words)
        ]
        popped = []
        while not buffer.is_empty:
            head = buffer.head()
            popped.append(head)
            buffer.pop_head(head)
        assert popped == drains
