"""Tests for the assertion layer (protocol + property checkers)."""

import pytest

from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.assertions import (
    BankFsmChecker,
    OrderingChecker,
    QosPropertyChecker,
    RtlProtocolChecker,
    TransactionChecker,
)
from repro.core import build_tlm_platform
from repro.ddr.bank import BankFsm
from repro.ddr.timing import DDR_TEST
from repro.errors import PropertyViolation, ProtocolError
from repro.rtl import build_rtl_platform
from repro.traffic import single_master_workload, table1_pattern_c


def served(txn, issued=0, grant=1, start=1, finish=10):
    txn.issued_at = issued
    txn.granted_at = grant
    txn.finished_at = finish
    return txn, grant, start, finish


class TestTransactionChecker:
    def test_clean_run_has_no_violations(self):
        platform = build_tlm_platform(table1_pattern_c(30))
        checker = TransactionChecker()
        platform.bus.add_observer(checker)
        platform.run()
        assert checker.clean
        assert checker.checks_run > 0

    def test_causality_violation_flagged(self):
        checker = TransactionChecker()
        txn = Transaction(master=0, kind=AccessKind.READ, addr=0, data=[0])
        txn.data = [0]
        checker(*served(txn, issued=50, grant=10, start=10, finish=20))
        assert not checker.clean
        assert any(v.rule == "causality" for v in checker.violations)

    def test_read_data_shape_checked(self):
        checker = TransactionChecker()
        txn = Transaction(master=0, kind=AccessKind.READ, addr=0, beats=4)
        txn.data = [1]  # wrong beat count
        checker(*served(txn))
        assert any(v.rule == "data-shape" for v in checker.violations)

    def test_strict_mode_raises(self):
        checker = TransactionChecker(strict=True)
        txn = Transaction(master=0, kind=AccessKind.READ, addr=0)
        txn.data = [0]
        with pytest.raises(ProtocolError):
            checker(*served(txn, issued=50, grant=10))

    def test_summary(self):
        checker = TransactionChecker()
        assert "clean" in checker.summary()


class TestRtlProtocolChecker:
    def test_clean_on_real_rtl_run(self):
        platform = build_rtl_platform(single_master_workload(15))
        checker = RtlProtocolChecker(
            [m.sig for m in platform.masters] + [platform.buffer_master.sig],
            platform.bus,
        )
        platform.engine.add_cycle_hook(checker.sample)
        platform.run()
        assert checker.clean

    def test_multiple_grants_flagged(self):
        platform = build_rtl_platform(table1_pattern_c(5))
        checker = RtlProtocolChecker(
            [m.sig for m in platform.masters], platform.bus
        )
        for master in platform.masters:
            master.sig.hgrant.drive(1)
        checker.sample(0)
        assert any(v.rule == "grant-unique" for v in checker.violations)


class TestQosPropertyChecker:
    def test_counts_misses(self):
        checker = QosPropertyChecker()
        ok = Transaction(master=0, kind=AccessKind.READ, addr=0, deadline=100)
        ok.issued_at, ok.finished_at = 0, 50
        checker(ok, 1, 1, 50)
        late = Transaction(master=0, kind=AccessKind.READ, addr=0, deadline=10)
        late.issued_at, late.finished_at = 0, 50
        checker(late, 1, 1, 50)
        assert checker.rt_transactions == 2
        assert checker.misses == 1
        assert checker.miss_rate() == 0.5

    def test_strict_raises_property_violation(self):
        checker = QosPropertyChecker(strict=True)
        late = Transaction(master=0, kind=AccessKind.READ, addr=0, deadline=10)
        late.issued_at, late.finished_at = 0, 50
        with pytest.raises(PropertyViolation):
            checker(late, 1, 1, 50)


class TestOrderingChecker:
    def test_fresh_read_is_clean(self):
        checker = OrderingChecker()
        w = Transaction(
            master=0, kind=AccessKind.WRITE, addr=0x10, data=[7]
        )
        w.issued_at = w.finished_at = 0
        checker(w, 0, 0, 0)
        r = Transaction(master=0, kind=AccessKind.READ, addr=0x10)
        r.data = [7]
        checker(r, 1, 1, 1)
        assert checker.clean

    def test_stale_read_flagged(self):
        checker = OrderingChecker()
        w = Transaction(master=0, kind=AccessKind.WRITE, addr=0x10, data=[7])
        checker(w, 0, 0, 0)
        stale = Transaction(master=0, kind=AccessKind.READ, addr=0x10)
        stale.data = [0]
        checker(stale, 1, 1, 1)
        assert any(v.rule == "stale-read" for v in checker.violations)

    def test_clean_on_real_run(self):
        platform = build_tlm_platform(table1_pattern_c(30))
        checker = OrderingChecker()
        platform.bus.add_observer(checker)
        platform.run()
        assert checker.clean


class TestBankFsmChecker:
    def test_legal_sequence_clean(self):
        banks = [BankFsm(0, DDR_TEST)]
        checker = BankFsmChecker(banks)
        banks[0].activate(row=1)
        for cycle in range(DDR_TEST.t_rcd + 1):
            banks[0].tick()
            checker.sample(cycle)
        assert checker.clean

    def test_clean_on_real_rtl_run(self):
        platform = build_rtl_platform(single_master_workload(10))
        checker = BankFsmChecker(platform.ddrc.banks)
        platform.engine.add_cycle_hook(checker.sample)
        platform.run()
        assert checker.clean
