"""Tests for the transaction-level DDR controller."""

import pytest

from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.ddr.controller import DdrControllerTlm
from repro.ddr.timing import DDR_TEST

T = DDR_TEST


def ddrc(**kwargs):
    kwargs.setdefault("timing", T)
    return DdrControllerTlm(**kwargs)


def write(addr, data, master=0):
    return Transaction(
        master=master,
        kind=AccessKind.WRITE,
        addr=addr,
        beats=len(data),
        data=list(data),
    )


def read(addr, beats=1, master=0):
    return Transaction(master=master, kind=AccessKind.READ, addr=addr, beats=beats)


class TestDdrControllerTlm:
    def test_write_read_roundtrip(self):
        ctrl = ddrc()
        finish = ctrl.serve(write(0x40, [1, 2, 3, 4]), 0)
        r = read(0x40, beats=4)
        ctrl.serve(r, finish + 1)
        assert r.data == [1, 2, 3, 4]

    def test_cold_access_timing(self):
        ctrl = ddrc(refresh_enabled=False)
        txn = read(0x0, beats=4)
        finish = ctrl.serve(txn, 10)
        # addr phase(1) + ACT + tRCD + CL + 4 beats
        expected = 10 + 1 + T.t_rcd + T.cas_latency + 4 - 1
        assert finish == expected

    def test_row_hit_faster_than_conflict(self):
        ctrl = ddrc(refresh_enabled=False)
        f1 = ctrl.serve(read(0x0, beats=1), 0)
        hit = read(0x4, beats=1)
        f2 = ctrl.serve(hit, f1 + 1)
        row_span = T.words_per_row * 4 * T.num_banks
        conflict = read(row_span, beats=1)  # same bank, different row
        f3 = ctrl.serve(conflict, f2 + 1)
        assert (f3 - f2) > (f2 - f1)

    def test_burst_crossing_rows_splits_segments(self):
        ctrl = ddrc(refresh_enabled=False)
        row_bytes = T.words_per_row * 4
        addr = row_bytes - 8  # last two words of row 0
        txn = write(addr, [1, 2, 3, 4])
        finish = ctrl.serve(txn, 0)
        check = read(addr, beats=4)
        ctrl.serve(check, finish + 1)
        assert check.data == [1, 2, 3, 4]

    def test_notify_next_hides_activation(self):
        baseline = ddrc(refresh_enabled=False)
        f_first = baseline.serve(read(0x0, beats=8), 0)
        cold = baseline.serve(read(T.words_per_row * 4, beats=1), f_first)

        prepared = ddrc(refresh_enabled=False)
        f_first2 = prepared.serve(read(0x0, beats=8), 0)
        nxt = read(T.words_per_row * 4, beats=1)
        prepared.notify_next(nxt, f_first2 - 4)  # BI info mid-burst
        warm = prepared.serve(nxt, f_first2)
        assert warm < cold
        assert prepared.prepared_banks == 1

    def test_refresh_amortized_at_boundaries(self):
        ctrl = ddrc()  # refresh on
        # Arrive while the owed refresh is still draining, so the access
        # visibly waits behind it.
        late = T.t_refi + 2
        txn = read(0x0)
        finish_with_refresh = ctrl.serve(txn, late)

        no_refresh = ddrc(refresh_enabled=False)
        finish_without = no_refresh.serve(read(0x0), late)
        assert finish_with_refresh > finish_without
        assert ctrl.refreshes == 1

    def test_idle_until_catches_up_refreshes(self):
        ctrl = ddrc()
        ctrl.idle_until(T.t_refi * 3 + 5)
        assert ctrl.refreshes == 3

    def test_access_permitted_blocks_during_refresh(self):
        ctrl = ddrc()
        txn = read(0x0)
        permitted = ctrl.access_permitted_at(txn, T.t_refi + 1)
        assert permitted > T.t_refi + 1

    def test_idle_banks_and_scores(self):
        ctrl = ddrc(refresh_enabled=False)
        assert ctrl.idle_banks(0) == (1 << T.num_banks) - 1
        ctrl.serve(read(0x0), 0)
        assert ctrl.access_score(0x0, 100) == 0  # row open
        assert ctrl.idle_banks(100) != (1 << T.num_banks) - 1

    def test_row_hit_rate(self):
        ctrl = ddrc(refresh_enabled=False)
        f = ctrl.serve(read(0x0), 0)
        ctrl.serve(read(0x4), f + 1)
        assert 0.0 < ctrl.row_hit_rate() <= 0.5 + 1e-9

    def test_counters(self):
        ctrl = ddrc(refresh_enabled=False)
        f = ctrl.serve(write(0x0, [1]), 0)
        ctrl.serve(read(0x0), f + 1)
        assert ctrl.writes == 1 and ctrl.reads == 1 and ctrl.data_beats == 2
