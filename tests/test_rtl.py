"""Tests for the pin-accurate RTL model."""

import pytest

from repro.core import build_tlm_platform
from repro.core.platform import config_for_workload
from repro.rtl import build_rtl_platform, MasterState
from repro.traffic import (
    single_master_workload,
    table1_pattern_a,
    table1_pattern_c,
    write_heavy_workload,
)

from dataclasses import replace


class TestRtlPlatform:
    def test_single_master_matches_tlm_exactly(self):
        workload = single_master_workload(30)
        rtl = build_rtl_platform(workload)
        rtl_result = rtl.run()
        tlm = build_tlm_platform(workload)
        tlm_result = tlm.run()
        assert rtl_result.cycles == tlm_result.cycles
        assert rtl.memory.equal_contents(tlm.memory)

    def test_multi_master_functional_equivalence(self):
        workload = table1_pattern_a(40)
        rtl = build_rtl_platform(workload)
        rtl_result = rtl.run()
        tlm = build_tlm_platform(workload)
        tlm_result = tlm.run()
        assert rtl.memory.equal_contents(tlm.memory)
        assert rtl_result.transactions == tlm_result.transactions
        # Cycle counts agree within the documented abstraction error.
        error = abs(rtl_result.cycles - tlm_result.cycles) / rtl_result.cycles
        assert error < 0.15

    def test_all_masters_drain(self):
        platform = build_rtl_platform(table1_pattern_a(25))
        platform.run()
        for master in platform.masters:
            assert master.done
            assert master.state is MasterState.IDLE
        assert platform.buffer_master.done
        assert platform.ddrc.idle

    def test_read_data_matches_writes(self):
        workload = single_master_workload(40)
        platform = build_rtl_platform(workload)
        platform.run()
        last = {}
        for txn in platform.agents[0].completed:
            addrs = range(txn.addr, txn.addr + txn.total_bytes, txn.size_bytes)
            if txn.is_write:
                for a, v in zip(addrs, txn.data):
                    last[a] = v
            else:
                for a, v in zip(addrs, txn.data):
                    if a in last:
                        assert v == last[a]

    def test_write_buffer_absorbs_under_contention(self):
        platform = build_rtl_platform(write_heavy_workload(30))
        result = platform.run()
        assert result.absorbed_writes > 0
        assert result.absorbed_writes == result.drained_writes

    def test_pipelined_grants_and_bi_traffic(self):
        platform = build_rtl_platform(table1_pattern_a(30))
        result = platform.run()
        assert result.pipelined_grants > 0
        assert result.bi_next_info > 0
        assert platform.ddrc.prepared_banks > 0

    def test_bi_disabled_removes_preparation(self):
        workload = table1_pattern_a(25)
        cfg = replace(config_for_workload(workload), bus_interface_enabled=False)
        platform = build_rtl_platform(workload, config=cfg)
        result = platform.run()
        assert result.bi_next_info == 0
        assert platform.ddrc.prepared_banks == 0

    def test_pipelining_disabled_still_drains(self):
        workload = table1_pattern_a(25)
        cfg = replace(config_for_workload(workload), request_pipelining=False)
        on = build_rtl_platform(workload).run()
        off = build_rtl_platform(workload, config=cfg).run()
        assert off.pipelined_grants == 0
        assert on.cycles < off.cycles

    def test_refreshes_happen_on_long_runs(self):
        workload = table1_pattern_c(40)
        platform = build_rtl_platform(workload)
        platform.run()
        assert platform.ddrc.refreshes > 0

    def test_qos_tracked(self):
        platform = build_rtl_platform(table1_pattern_c(25))
        result = platform.run()
        assert result.rt_deadline_hits + result.rt_deadline_misses > 0

    def test_vcd_trace_produced(self):
        platform = build_rtl_platform(single_master_workload(5), trace=True)
        platform.run()
        assert platform.tracer is not None
        text = platform.tracer.getvalue()
        assert "$enddefinitions" in text
        assert platform.tracer.change_count > 10

    def test_rtl_evaluate_cost_is_per_cycle(self):
        # The cost model the speedup rests on: the reference sweep pays
        # evaluate passes per cycle, not per transaction — and the
        # fast-forward engine only ever does less of that work (idle
        # settles elided, fully idle cycle ranges skipped outright).
        workload = single_master_workload(10)
        reference = build_rtl_platform(workload, full_sweep=True)
        ref_result = reference.run()
        assert reference.engine.evaluate_passes >= ref_result.cycles
        fast = build_rtl_platform(workload)
        fast_result = fast.run()
        assert fast_result.cycles == ref_result.cycles
        assert fast.engine.evaluate_passes <= reference.engine.evaluate_passes
