"""Tests for repro.kernel.simulator."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.kernel.simulator import RepeatingTask, Simulator


class TestSimulator:
    def test_runs_actions_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5, lambda: seen.append(sim.now))
        sim.schedule_after(2, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2, 5]

    def test_now_starts_at_zero(self):
        assert Simulator().now == 0

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_after(-1, lambda: None)

    def test_run_until_leaves_later_events_queued(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3, lambda: seen.append(3))
        sim.schedule_at(30, lambda: seen.append(30))
        sim.run(until=10)
        assert seen == [3]
        assert sim.now == 10
        assert sim.pending == 1

    def test_actions_can_schedule_more_actions(self):
        sim = Simulator()
        seen = []

        def chain():
            seen.append(sim.now)
            if sim.now < 5:
                sim.schedule_after(1, chain)

        sim.schedule_at(0, chain)
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1, lambda: (seen.append(1), sim.stop()))
        sim.schedule_at(2, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_reset(self):
        sim = Simulator()
        sim.schedule_at(4, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0
        assert sim.pending == 0

    def test_zero_delay_runs_same_cycle(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3, lambda: sim.schedule_after(0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3]


class TestRepeatingTask:
    def test_fires_every_period(self):
        sim = Simulator()
        seen = []
        RepeatingTask(sim, period=10, action=lambda: seen.append(sim.now))
        sim.run(until=35)
        assert seen == [10, 20, 30]

    def test_action_returning_false_cancels(self):
        sim = Simulator()
        seen = []

        def action():
            seen.append(sim.now)
            return len(seen) < 2

        RepeatingTask(sim, period=5, action=action)
        sim.run(until=100)
        assert seen == [5, 10]

    def test_cancel(self):
        sim = Simulator()
        seen = []
        task = RepeatingTask(sim, period=5, action=lambda: seen.append(sim.now))
        sim.schedule_at(12, task.cancel)
        sim.run(until=100)
        assert seen == [5, 10]

    def test_bad_period_raises(self):
        with pytest.raises(SchedulingError):
            RepeatingTask(Simulator(), period=0, action=lambda: None)
