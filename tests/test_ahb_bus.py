"""Tests for the plain AMBA 2.0 baseline bus."""

import pytest

from repro.ahb.arbiter import (
    FixedPriorityArbiter,
    RoundRobinArbiter,
    make_baseline_arbiter,
)
from repro.ahb.bus import PlainAhbBus
from repro.ahb.decoder import single_slave_map
from repro.ahb.master import TlmMaster, TrafficItem
from repro.ahb.slave import SramSlave
from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.errors import ConfigError


def agent(index, *items):
    return TlmMaster(index, f"m{index}", list(items))


def item(master, addr, kind=AccessKind.READ, beats=1, think=0, data=None):
    txn = Transaction(
        master=master,
        kind=kind,
        addr=addr,
        beats=beats,
        data=list(data) if data else [],
    )
    return TrafficItem(txn, think_cycles=think)


class TestBaselineArbiters:
    def _cands(self, *masters):
        return [
            Transaction(master=m, kind=AccessKind.READ, addr=0) for m in masters
        ]

    def test_fixed_priority(self):
        arb = FixedPriorityArbiter()
        assert arb.choose(self._cands(2, 0, 1), now=0).master == 0

    def test_round_robin_rotates(self):
        arb = RoundRobinArbiter(num_masters=3)
        first = arb.choose(self._cands(0, 1, 2), now=0)
        second = arb.choose(self._cands(0, 1, 2), now=1)
        third = arb.choose(self._cands(0, 1, 2), now=2)
        assert [first.master, second.master, third.master] == [0, 1, 2]

    def test_factory(self):
        assert make_baseline_arbiter("fixed", 4).name == "fixed-priority"
        assert make_baseline_arbiter("round_robin", 4).name == "round-robin"
        with pytest.raises(ConfigError):
            make_baseline_arbiter("lottery", 4)


class TestPlainAhbBus:
    def test_single_master_runs_to_completion(self):
        bus = PlainAhbBus(
            [agent(0, item(0, 0x0, AccessKind.WRITE, 2, data=[1, 2]),
                   item(0, 0x0, beats=2, think=1))],
            [SramSlave()],
            single_slave_map(),
        )
        result = bus.run()
        assert result.transactions == 2
        assert bus.masters[0].completed[1].data == [1, 2]

    def test_fixed_priority_ordering(self):
        low = agent(0, item(0, 0x10))
        high = agent(1, item(1, 0x20))
        bus = PlainAhbBus([low, high], [SramSlave()], single_slave_map())
        bus.run()
        assert low.completed[0].finished_at < high.completed[0].finished_at

    def test_idle_gap_advances_time(self):
        bus = PlainAhbBus(
            [agent(0, item(0, 0x0), item(0, 0x4, think=50))],
            [SramSlave()],
            single_slave_map(),
        )
        result = bus.run()
        assert result.cycles > 50
        assert result.utilization < 0.5

    def test_observer_called_per_transaction(self):
        seen = []
        bus = PlainAhbBus(
            [agent(0, item(0, 0x0), item(0, 0x4))],
            [SramSlave()],
            single_slave_map(),
        )
        bus.add_observer(lambda txn, g, s, f: seen.append((txn.uid, g, s, f)))
        bus.run()
        assert len(seen) == 2
        for _uid, grant, start, finish in seen:
            assert grant <= start <= finish

    def test_max_cycles_stops_early(self):
        items = [item(0, 4 * i, think=10) for i in range(50)]
        bus = PlainAhbBus([agent(0, *items)], [SramSlave()], single_slave_map())
        result = bus.run(max_cycles=30)
        assert result.transactions < 50

    def test_arbitration_latency_counted(self):
        fast = PlainAhbBus(
            [agent(0, item(0, 0x0))],
            [SramSlave()],
            single_slave_map(),
            arbitration_cycles=0,
        )
        slow = PlainAhbBus(
            [agent(0, item(0, 0x0))],
            [SramSlave()],
            single_slave_map(),
            arbitration_cycles=5,
        )
        assert slow.run().cycles == fast.run().cycles + 5

    def test_empty_masters_rejected(self):
        with pytest.raises(ConfigError):
            PlainAhbBus([], [SramSlave()], single_slave_map())

    def test_per_master_counts(self):
        a = agent(0, item(0, 0x0), item(0, 0x8))
        b = agent(1, item(1, 0x100))
        bus = PlainAhbBus([a, b], [SramSlave()], single_slave_map())
        result = bus.run()
        assert result.per_master_transactions == [2, 1]
