"""Tests for the Clock time base."""

import pytest

from repro.errors import ConfigError
from repro.kernel.clock import Clock


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().cycle == 0

    def test_advance(self):
        clock = Clock()
        assert clock.advance(5) == 5
        assert clock.advance() == 6

    def test_advance_to_monotonic(self):
        clock = Clock()
        clock.advance_to(100)
        with pytest.raises(ConfigError):
            clock.advance_to(50)

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigError):
            Clock().advance(-1)

    def test_reset(self):
        clock = Clock()
        clock.advance(42)
        clock.reset()
        assert clock.cycle == 0

    def test_cycles_to_us(self):
        clock = Clock(frequency_mhz=100.0)
        assert clock.cycles_to_us(500) == pytest.approx(5.0)

    def test_bad_frequency(self):
        with pytest.raises(ConfigError):
            Clock(frequency_mhz=0)
