"""Tests for repro.kernel.signal."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.kernel.signal import (
    Signal,
    SignalBundle,
    bytes_to_vector,
    vector_to_bytes,
)


class TestSignal:
    def test_reset_value(self):
        assert Signal("s", width=8, reset=0x5A).value == 0x5A

    def test_drive_is_immediate(self):
        sig = Signal("s", width=8)
        changed = sig.drive(7)
        assert changed and sig.value == 7

    def test_drive_same_value_reports_unchanged(self):
        sig = Signal("s", width=8, reset=3)
        assert sig.drive(3) is False

    def test_drive_next_not_visible_until_commit(self):
        sig = Signal("s", width=8)
        sig.drive_next(9)
        assert sig.value == 0
        assert sig.commit() is True
        assert sig.value == 9

    def test_commit_without_pending_is_noop(self):
        sig = Signal("s", reset=1)
        assert sig.commit() is False
        assert sig.value == 1

    def test_width_masking(self):
        sig = Signal("s", width=4)
        sig.drive(0x1F)
        assert sig.value == 0xF

    def test_bool_coercion(self):
        sig = Signal("s")
        sig.drive(True)
        assert sig.value == 1

    def test_non_integer_rejected(self):
        with pytest.raises(SimulationError):
            Signal("s").drive("high")

    def test_invalid_width(self):
        with pytest.raises(SimulationError):
            Signal("s", width=0)

    def test_consume_changed(self):
        sig = Signal("s")
        sig.drive(1)
        assert sig.consume_changed() is True
        assert sig.consume_changed() is False

    def test_watchers_called_on_change(self):
        sig = Signal("s", width=8)
        seen = []
        sig.watch(lambda s: seen.append(s.value))
        sig.drive(1)
        sig.drive(1)  # no change, no callback
        sig.drive_next(2)
        sig.commit()
        assert seen == [1, 2]


class TestSignalBundle:
    def test_make_and_iterate(self):
        bundle = SignalBundle("m0")
        a = bundle.make("a", width=2)
        b = bundle.make("b")
        assert {sig.name for sig in bundle.signals()} == {"m0.a", "m0.b"}
        assert a.width == 2 and b.width == 1

    def test_reset_all(self):
        bundle = SignalBundle("x")
        sig = bundle.make("v", width=8, reset=3)
        sig.drive(200)
        bundle.reset_all()
        assert sig.value == 0


class TestVectorHelpers:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_32bit(self, value):
        assert bytes_to_vector(vector_to_bytes(value, 32)) == value

    def test_little_endian(self):
        assert vector_to_bytes(0x0102, 16) == b"\x02\x01"
