"""Tests for AHB protocol types and the Transaction object."""

import pytest

from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.ahb.types import (
    AccessKind,
    HBurst,
    HResp,
    HSize,
    HTrans,
    burst_for_beats,
)
from repro.errors import ProtocolError


class TestTypes:
    def test_htrans_encodings(self):
        assert int(HTrans.IDLE) == 0 and int(HTrans.NONSEQ) == 2

    def test_burst_beats(self):
        assert HBurst.SINGLE.beats == 1
        assert HBurst.INCR8.beats == 8
        assert HBurst.WRAP16.beats == 16

    def test_wrapping_flags(self):
        assert HBurst.WRAP4.is_wrapping
        assert not HBurst.INCR4.is_wrapping

    def test_burst_for_beats(self):
        assert burst_for_beats(1) is HBurst.SINGLE
        assert burst_for_beats(8) is HBurst.INCR8
        assert burst_for_beats(3) is HBurst.INCR
        assert burst_for_beats(4, wrapping=True) is HBurst.WRAP4

    def test_burst_for_beats_errors(self):
        with pytest.raises(ProtocolError):
            burst_for_beats(0)
        with pytest.raises(ProtocolError):
            burst_for_beats(3, wrapping=True)

    def test_hsize(self):
        assert HSize.WORD.bytes == 4
        assert HSize.for_bytes(8) is HSize.DWORD
        with pytest.raises(ProtocolError):
            HSize.for_bytes(3)

    def test_hresp_values(self):
        assert int(HResp.OKAY) == 0 and int(HResp.SPLIT) == 3


class TestTransaction:
    def _txn(self, **kwargs):
        defaults = dict(master=0, kind=AccessKind.READ, addr=0x100, beats=4)
        defaults.update(kwargs)
        return Transaction(**defaults)

    def test_basic_properties(self):
        txn = self._txn()
        assert txn.burst is HBurst.INCR4
        assert txn.total_bytes == 16
        assert not txn.is_write

    def test_misaligned_address_rejected(self):
        with pytest.raises(ProtocolError):
            self._txn(addr=0x102)

    def test_zero_beats_rejected(self):
        with pytest.raises(ProtocolError):
            self._txn(beats=0)

    def test_bad_size_rejected(self):
        with pytest.raises(ProtocolError):
            self._txn(size_bytes=3, addr=0x99)

    def test_write_data_length_checked(self):
        with pytest.raises(ProtocolError):
            self._txn(kind=AccessKind.WRITE, beats=4, data=[1, 2])

    def test_wrap_length_checked(self):
        with pytest.raises(ProtocolError):
            self._txn(wrapping=True, beats=3)

    def test_timing_views_require_completion(self):
        txn = self._txn()
        with pytest.raises(ProtocolError):
            _ = txn.latency

    def test_timing_views(self):
        txn = self._txn()
        txn.issued_at, txn.granted_at, txn.finished_at = 10, 12, 30
        assert txn.latency == 20
        assert txn.wait_cycles == 2
        assert txn.service_cycles == 18

    def test_met_deadline(self):
        txn = self._txn(deadline=25)
        txn.issued_at, txn.finished_at = 0, 20
        assert txn.met_deadline is True
        late = self._txn(deadline=15)
        late.issued_at, late.finished_at = 0, 20
        assert late.met_deadline is False
        none = self._txn()
        none.issued_at, none.finished_at = 0, 20
        assert none.met_deadline is None

    def test_clone_for_replay_clears_bookkeeping(self):
        txn = self._txn(kind=AccessKind.WRITE, data=[1, 2, 3, 4])
        txn.finished_at = 99
        clone = txn.clone_for_replay()
        assert clone.finished_at == -1
        assert clone.data == [1, 2, 3, 4]
        assert clone.uid != txn.uid

    def test_unique_uids(self):
        assert self._txn().uid != self._txn().uid

    def test_write_buffer_master_constant(self):
        assert WRITE_BUFFER_MASTER == 255
