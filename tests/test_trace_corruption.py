"""Corrupted-trace handling: every malformation fails at load time.

A trace file is external input; a bad line must raise
:class:`~repro.errors.TrafficError` naming the offending line when the
trace is *loaded* — never a raw ``ValueError``/``ProtocolError`` later,
mid-replay, possibly inside a sweep worker.
"""

import io
import json

import pytest

from repro.errors import TrafficError
from repro.traffic import load_trace, load_trace_file
from repro.traffic.trace import record_from_payload

#: A fully valid record payload; each test corrupts one aspect.
BASE = dict(
    master=0,
    kind="read",
    addr=64,
    beats=4,
    size_bytes=4,
    wrapping=False,
    data=[],
    issued_at=0,
    granted_at=2,
    started_at=3,
    finished_at=9,
    via_write_buffer=False,
    deadline=None,
    uid=1,
    resp=0,
    fault_plan=[],
    retry_limit=4,
)


def _payload(**overrides):
    payload = dict(BASE)
    payload.update(overrides)
    return payload


def _load_lines(*lines):
    return load_trace(io.StringIO("\n".join(lines) + "\n"))


def _dumps(**overrides):
    return json.dumps(_payload(**overrides))


class TestLineLevelCorruption:
    def test_valid_lines_load(self):
        records = _load_lines(_dumps(), _dumps(uid=2, addr=128))
        assert [r.uid for r in records] == [1, 2]

    def test_truncated_line_names_line_number(self):
        good = _dumps()
        truncated = good[: len(good) // 2]
        with pytest.raises(TrafficError, match="malformed trace line 2"):
            _load_lines(good, truncated)

    def test_non_object_line_rejected(self):
        with pytest.raises(TrafficError, match="trace line 1.*expected an object"):
            _load_lines(json.dumps([1, 2, 3]))

    def test_duplicate_uid_names_both_lines(self):
        with pytest.raises(
            TrafficError, match=r"line 3: duplicate uid 1 \(first seen on line 1\)"
        ):
            _load_lines(_dumps(), _dumps(uid=2), _dumps(addr=256))

    def test_unreadable_path(self, tmp_path):
        with pytest.raises(TrafficError, match="cannot read trace"):
            load_trace_file(tmp_path / "nope.jsonl")

    def test_blank_lines_are_skipped(self):
        records = load_trace(io.StringIO(f"\n{_dumps()}\n\n"))
        assert len(records) == 1


class TestFieldLevelCorruption:
    def test_missing_required_field(self):
        payload = _payload()
        del payload["addr"]
        with pytest.raises(TrafficError, match=r"missing fields \['addr'\]"):
            _load_lines(json.dumps(payload))

    def test_unknown_field(self):
        with pytest.raises(TrafficError, match="unknown fields"):
            _load_lines(_dumps(hsplit=True))

    def test_bad_access_kind(self):
        with pytest.raises(TrafficError, match="bad access kind"):
            _load_lines(_dumps(kind="prefetch"))

    def test_nan_address_rejected(self):
        # json.loads accepts bare NaN; the loader must not.
        line = _dumps(addr=0).replace('"addr": 0', '"addr": NaN')
        assert "NaN" in line
        with pytest.raises(TrafficError, match="'addr' must be an integer"):
            _load_lines(line)

    def test_bool_masquerading_as_int(self):
        with pytest.raises(TrafficError, match="'master' must be an integer"):
            _load_lines(_dumps(master=True))

    def test_negative_cycle_stamp_floor(self):
        # -1 means "never happened"; anything lower is corruption.
        records = _load_lines(_dumps(granted_at=-1))
        assert records[0].granted_at == -1
        with pytest.raises(TrafficError, match="'granted_at'"):
            _load_lines(_dumps(granted_at=-2))

    def test_string_data_words(self):
        with pytest.raises(TrafficError, match="'data' must be a list"):
            _load_lines(_dumps(kind="write", data=["0xff"] * 4))

    def test_resp_out_of_range(self):
        with pytest.raises(TrafficError, match="HResp"):
            _load_lines(_dumps(resp=7))
        with pytest.raises(TrafficError, match="HResp"):
            _load_lines(_dumps(resp=-1))

    def test_fault_plan_bad_codes(self):
        with pytest.raises(TrafficError, match="fault_plan"):
            _load_lines(_dumps(fault_plan=[0]))  # OKAY is not a fault
        with pytest.raises(TrafficError, match="fault_plan"):
            _load_lines(_dumps(fault_plan="12"))

    def test_retry_limit_negative(self):
        with pytest.raises(TrafficError, match="retry_limit"):
            _load_lines(_dumps(retry_limit=-3))

    def test_fault_defaults_keep_legacy_traces_loadable(self):
        payload = _payload()
        for legacy_optional in ("deadline", "uid", "resp", "fault_plan", "retry_limit"):
            del payload[legacy_optional]
        [record] = _load_lines(json.dumps(payload))
        assert record.resp == 0
        assert record.fault_plan == ()
        assert record.retry_limit == 4


class TestProtocolLevelCorruption:
    """Transaction-legality mirrors: fail with the line, not mid-replay."""

    def test_misaligned_address(self):
        with pytest.raises(TrafficError, match="not aligned"):
            _load_lines(_dumps(addr=66))

    def test_non_power_of_two_size(self):
        with pytest.raises(TrafficError, match="power of two"):
            _load_lines(_dumps(size_bytes=3, addr=63))

    def test_illegal_wrap_length(self):
        with pytest.raises(TrafficError, match="wrapping bursts"):
            _load_lines(_dumps(wrapping=True, beats=6))

    def test_kb_boundary_crossing(self):
        with pytest.raises(TrafficError, match="1 KB boundary"):
            _load_lines(_dumps(addr=1016, beats=4))

    def test_write_data_shape(self):
        with pytest.raises(TrafficError, match="beats of data"):
            _load_lines(_dumps(kind="write", data=[1, 2], beats=4))

    def test_record_from_payload_prefix(self):
        with pytest.raises(TrafficError, match="^my context:"):
            record_from_payload(_payload(resp=9), "my context")
