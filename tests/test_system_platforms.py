"""PlatformBuilder acceptance: golden equivalence and multi-slave routing.

Three guarantees pinned here:

1. The registry's paper-topology spec, elaborated through the new API,
   reproduces the committed golden arbitration trace bit-for-bit — and
   so do the deprecated ``build_*_platform`` shims, which are now thin
   wrappers over the same elaboration.
2. ``Platform.attach`` delivers the same observations on every engine.
3. The multi-slave scenario (DDR + SRAM + APB stub) builds at TLM and
   RTL levels, routes every burst to its region, and passes a
   functional read-back check across all mapped regions at both levels.
"""

import json
from pathlib import Path

import pytest

from repro.ahb.burst import transaction_addresses
from repro.core import build_plain_platform, build_tlm_platform
from repro.profiling import BusMonitor
from repro.rtl import build_rtl_platform
from repro.system import PlatformBuilder, paper_topology, scenario
from repro.system.scenarios import APB_BASE, DDR_BASE, SRAM_BASE
from repro.traffic import MasterSpec, TrafficPattern, Workload, table1_pattern_a

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace_pattern_a.json"


def _traced_run(platform):
    trace = []

    def observer(txn, grant, start, finish):
        trace.append(
            [
                txn.master,
                "W" if txn.is_write else "R",
                txn.addr,
                txn.beats,
                int(txn.via_write_buffer),
                grant,
                start,
                finish,
            ]
        )

    platform.attach(observer)
    result = platform.run()
    return trace, result


class TestGoldenThroughSpecApi:
    def test_paper_spec_replays_golden_trace(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        spec = paper_topology(transactions=golden["transactions_per_master"])
        assert spec.workload.seed == golden["seed"]
        platform = PlatformBuilder(spec).build("tlm")
        trace, result = _traced_run(platform)
        assert trace == golden["grants"]
        assert result.cycles == golden["cycles"]
        assert result.filter_stats == golden["filter_stats"]
        assert result.pipelined_grants == golden["pipelined_grants"]

    def test_shims_and_builder_are_bit_identical(self):
        for level, shim in [
            ("tlm", lambda: build_tlm_platform(table1_pattern_a(40))),
            ("plain", lambda: build_plain_platform(table1_pattern_a(40))),
            ("rtl", lambda: build_rtl_platform(table1_pattern_a(40))),
        ]:
            # Fresh platforms per run: traffic agents are consumed.
            via_spec = PlatformBuilder(
                paper_topology(workload=table1_pattern_a(40))
            ).build(level)
            via_shim = shim()
            a = via_spec.run()
            b = via_shim.run()
            assert a.cycles == b.cycles, level
            assert a.transactions == b.transactions, level
            assert a.per_master_transactions == b.per_master_transactions, level
            assert via_spec.memory.equal_contents(via_shim.memory), level

    def test_threaded_level_matches_method_level(self):
        method = PlatformBuilder(
            paper_topology(workload=table1_pattern_a(40))
        ).build("tlm").run()
        thread = PlatformBuilder(
            paper_topology(workload=table1_pattern_a(40))
        ).build("tlm-threaded").run()
        assert method.cycles == thread.cycles
        assert method.filter_stats == thread.filter_stats


class TestAttach:
    @pytest.mark.parametrize("level", ["tlm", "tlm-threaded", "plain"])
    def test_live_observer_sees_every_transfer(self, level):
        platform = PlatformBuilder(
            paper_topology(workload=table1_pattern_a(25))
        ).build(level)
        monitor = BusMonitor()
        platform.attach(monitor)
        result = platform.run()
        assert monitor.transactions == result.transactions
        assert monitor.bytes_moved == result.bytes_transferred

    def test_rtl_attach_replays_bus_transfers(self):
        platform = PlatformBuilder(
            paper_topology(workload=table1_pattern_a(25))
        ).build("rtl")
        monitor = BusMonitor()
        seen = []
        platform.attach(monitor)
        platform.attach(lambda txn, g, s, f: seen.append((txn.master, g, s, f)))
        result = platform.run()
        # Replay mirrors live TLM observers: bus transfers only — the
        # non-posted master transactions plus the buffer's drains.
        direct = sum(
            1
            for agent in platform.agents
            for txn in agent.completed
            if not txn.via_write_buffer
        )
        drains = len(platform.buffer_master.drained_txns)
        assert drains == result.drained_writes
        assert len(seen) == direct + drains
        assert monitor.transactions == direct + drains
        # Every replayed observation carries real bus cycles (no -1s
        # from absorbed originals that never owned the bus).
        assert all(g >= 0 and s >= 0 and f >= s for _m, g, s, f in seen)
        # Drains show up under the write buffer's pseudo-master port.
        if drains:
            assert monitor.write_buffer_port.writes == drains


def _functional_readback(masters_like):
    """Replay each master's completed stream against a model store.

    Masters own disjoint windows, so per-master replay is exact: every
    write updates the model at its beat addresses; every read must
    return the model's current contents (zero for never-written bytes
    would need byte granularity — windows are word-aligned and patterns
    use 4-byte beats, so word granularity is exact here).
    """
    checked_reads = 0
    for master in masters_like:
        model = {}
        for txn in sorted(master.completed, key=lambda t: t.uid):
            addrs = transaction_addresses(txn)
            if txn.is_write:
                data = txn.data if txn.data else [0] * txn.beats
                for addr, word in zip(addrs, data):
                    model[addr] = word
            else:
                assert len(txn.data) == txn.beats
                for addr, word in zip(addrs, txn.data):
                    if addr in model:
                        assert word == model[addr], (
                            f"{master.name}: read-back mismatch at {addr:#x}"
                        )
                        checked_reads += 1
    return checked_reads


class TestMultiSlaveScenario:
    @pytest.fixture(scope="class")
    def platforms(self):
        spec = scenario("multi-slave-soc", transactions=60)
        tlm = PlatformBuilder(spec).build("tlm")
        tlm_result = tlm.run()
        rtl = PlatformBuilder(spec).build("rtl")
        rtl_result = rtl.run()
        return spec, tlm, tlm_result, rtl, rtl_result

    def test_builds_at_every_level(self):
        spec = scenario("multi-slave-soc", transactions=10)
        for level in ("tlm", "tlm-threaded", "plain", "rtl"):
            result = PlatformBuilder(spec).build(level).run()
            assert result.transactions == 40

    def test_every_region_sees_traffic(self, platforms):
        _spec, tlm, _tr, _rtl, _rr = platforms
        ddr, sram, apb = tlm.slaves
        assert ddr.reads + ddr.writes > 0
        assert sram.reads + sram.writes > 0
        assert apb.reads + apb.writes > 0

    @pytest.fixture(scope="class")
    def readback_spec(self):
        """The multi-slave map under write-then-read-heavy tight windows.

        Each master hammers a 2 KiB window of one region with mixed
        reads/writes and high sequential locality, so reads re-visit
        written addresses in every region — the read-back condition the
        scenario's wide random windows rarely hit.
        """

        def hammer(base):
            return TrafficPattern(
                name="rw-hammer",
                read_fraction=0.5,
                burst_mix=((1, 0.3), (4, 0.7)),
                think_range=(0, 2),
                base_addr=base,
                addr_span=2048,
                sequential_fraction=0.85,
            )

        workload = Workload(
            "readback",
            (
                MasterSpec("ddr-rw", hammer(DDR_BASE), 150),
                MasterSpec("sram-rw", hammer(SRAM_BASE), 150),
                MasterSpec("apb-rw", hammer(APB_BASE), 150),
            ),
            seed=3,
        )
        return scenario("multi-slave-soc").with_workload(workload)

    def test_functional_readback_all_regions_tlm(self, readback_spec):
        platform = PlatformBuilder(readback_spec).build("tlm")
        platform.run()
        checked = _functional_readback(platform.masters)
        assert checked > 50  # reads really re-visited written words

    def test_functional_readback_all_regions_rtl(self, readback_spec):
        platform = PlatformBuilder(readback_spec).build("rtl")
        platform.run()
        checked = _functional_readback(platform.agents)
        assert checked > 50

    def test_cross_level_functional_equivalence(self, platforms):
        _spec, tlm, _tr, rtl, _rr = platforms
        # DDR images are directly comparable MemoryModels.
        assert tlm.ddrc.memory.equal_contents(rtl.ddrc.memory)
        # Per-master read streams must match word for word.
        for t_master, r_agent in zip(tlm.masters, rtl.agents):
            t_reads = [t.data for t in t_master.completed if not t.is_write]
            r_reads = [t.data for t in r_agent.completed if not t.is_write]
            assert t_reads == r_reads, t_master.name

    def test_static_stores_match_across_levels(self, platforms):
        _spec, tlm, _tr, rtl, _rr = platforms
        sram_tlm, apb_tlm = tlm.slaves[1], tlm.slaves[2]
        sram_rtl, apb_rtl = rtl.static_slaves
        assert sram_tlm.writes == sram_rtl.writes
        assert apb_tlm.writes == apb_rtl.writes
        # Every word the RTL store holds must read back identically from
        # the TLM slave (scenario traffic is word-sized and aligned).
        for t_slave, r_slave in [(sram_tlm, sram_rtl), (apb_tlm, apb_rtl)]:
            word_addrs = sorted({addr & ~3 for addr, _b in r_slave.memory.items()})
            assert word_addrs, r_slave.name
            for addr in word_addrs:
                assert t_slave.peek_word(addr, 4) == r_slave.memory.read(addr, 4)

    @pytest.mark.parametrize("level", ["tlm", "tlm-threaded"])
    def test_bi_off_bank_filter_abstains(self, level):
        """BI disabled on a multi-slave map: no bank-score oracle exists,
        so the bank filter must abstain (narrow nothing) and no BI
        next-info may flow — matching single-slave and RTL semantics."""
        spec = scenario("multi-slave-soc", transactions=25).with_config(
            bus_interface_enabled=False
        )
        result = PlatformBuilder(spec).build(level).run()
        assert result.filter_stats["bank"]["narrowed"] == 0
        assert result.bi_next_info == 0

    def _hole_spec(self, default_slave=None):
        """Multi-slave map with traffic aimed at an unmapped window."""
        hole = TrafficPattern(
            name="hole",
            burst_mix=((1, 1.0),),
            base_addr=0x0A00_0000,  # beyond every mapped region
            addr_span=4096,
        )
        workload = Workload("hole", (MasterSpec("m0", hole, 5),), seed=1)
        spec = scenario("multi-slave-soc").with_workload(workload)
        if default_slave is not None:
            import dataclasses

            spec = dataclasses.replace(spec, default_slave=default_slave)
        return spec

    @pytest.mark.parametrize("level", ["tlm", "rtl"])
    def test_unmapped_access_fails_loudly_on_strict_map(self, level):
        """Strict map + unmapped address: both levels raise instead of
        serving garbage (TLM) or hanging with no responder (RTL)."""
        from repro.errors import MemoryError_

        platform = PlatformBuilder(self._hole_spec()).build(level)
        with pytest.raises(MemoryError_):
            platform.run(max_cycles=50_000)

    @pytest.mark.parametrize("level", ["tlm", "rtl"])
    def test_default_slave_routes_consistently_at_both_levels(self, level):
        """With a default slave, the hole routes to it at every level;
        the catch-all slave's own bounds then reject the stray access
        identically (ConfigError) instead of TLM-serves/RTL-hangs."""
        from repro.errors import ConfigError

        platform = PlatformBuilder(self._hole_spec(default_slave=2)).build(level)
        with pytest.raises(ConfigError, match="outside"):
            platform.run(max_cycles=50_000)

    def test_cycle_accuracy_within_paper_range(self, platforms):
        _spec, _tlm, tlm_result, _rtl, rtl_result = platforms
        error = abs(rtl_result.cycles - tlm_result.cycles) / rtl_result.cycles
        assert error < 0.10  # paper reports ~96–98% accuracy
        assert tlm_result.transactions == rtl_result.transactions


class TestMpegBurstyScenario:
    """Bursty MPEG-like arrivals (scenario backlog) at TLM and RTL."""

    def test_registered_and_stream_mode(self):
        spec = scenario("mpeg-bursty", transactions=10)
        assert spec.workload.gen_mode == "stream"
        patterns = [m.pattern for m in spec.workload.masters]
        assert any(p.burst_gap is not None for p in patterns)
        # RT decoder streams carry QoS settings into the config.
        assert spec.config().qos

    def test_runs_at_tlm_and_rtl_with_functional_match(self):
        spec = scenario("mpeg-bursty", transactions=25)
        builder = PlatformBuilder(spec)
        tlm = builder.build("tlm")
        tlm_result = tlm.run()
        rtl = builder.build("rtl")
        rtl_result = rtl.run()
        assert tlm_result.transactions > 0
        assert rtl.memory.equal_contents(tlm.memory)
        # Same stream at both levels: cycle counts must stay close
        # (the paper's accuracy claim extends to bursty arrivals).
        error = abs(tlm_result.cycles - rtl_result.cycles) / rtl_result.cycles
        assert error < 0.10

    def test_bursts_visible_in_issue_schedule(self):
        """Inter-frame gaps must actually shape the issue timeline."""
        spec = scenario("mpeg-bursty", transactions=30)
        per_burst, gap_lo, _hi = spec.workload.masters[0].pattern.burst_gap
        platform = PlatformBuilder(spec).build("tlm")
        platform.run()
        issued = sorted(
            txn.issued_at for txn in platform.masters[0].completed
        )
        gaps = [b - a for a, b in zip(issued, issued[1:])]
        long_gaps = [g for g in gaps if g >= gap_lo]
        assert len(long_gaps) >= (30 // per_burst) - 1
