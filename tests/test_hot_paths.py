"""Unit tests for the hot-path machinery added by the perf overhaul.

Covers the bucketed event queue's FIFO guarantees, the allocation-free
``Event.notify`` snapshot semantics, the cycle engine's sensitivity
skipping and touch discipline, the arbiter's single-candidate fast path
(statistics- and rotation-preserving) and the profiling gate.
"""

import pytest

from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.core.arbiter import AhbPlusArbiter
from repro.core.filters import ArbitrationContext, Candidate
from repro.errors import ConfigError
from repro.kernel.cycle import CycleEngine
from repro.kernel.events import Event, EventQueue
from repro.kernel.signal import Signal
from repro.profiling import BusMonitor


def _txn(master=0, addr=0, kind=AccessKind.READ, issued=0):
    txn = Transaction(master=master, kind=kind, addr=addr)
    txn.issued_at = issued
    return txn


class TestBucketedQueue:
    def test_same_time_bucket_is_fifo_across_interleaved_pushes(self):
        queue = EventQueue()
        order = []
        queue.push(5, lambda: order.append("a5"))
        queue.push(3, lambda: order.append("a3"))
        queue.push(5, lambda: order.append("b5"))
        queue.push(3, lambda: order.append("b3"))
        queue.push(5, lambda: order.append("c5"))
        while queue:
            _, action = queue.pop()
            action()
        assert order == ["a3", "b3", "a5", "b5", "c5"]

    def test_len_counts_entries_not_buckets(self):
        queue = EventQueue()
        for _ in range(4):
            queue.push(7, lambda: None)
        assert len(queue) == 4
        queue.pop()
        assert len(queue) == 3

    def test_bucket_drained_then_reused(self):
        queue = EventQueue()
        queue.push(1, lambda: "x")
        queue.pop()
        assert not queue
        queue.push(1, lambda: "y")
        assert queue.peek_time() == 1
        assert len(queue) == 1


class TestEventNotifyFastPath:
    def test_unsubscribed_mid_notify_still_delivered_this_round(self):
        """Seed semantics: delivery uses the set present at notify()."""
        event = Event()
        seen = []

        def first():
            seen.append("first")
            if not seen.count("second"):
                event.unsubscribe(second)

        def second():
            seen.append("second")

        event.subscribe(first)
        event.subscribe(second)
        event.notify()
        assert seen == ["first", "second"]
        event.notify()
        assert seen == ["first", "second", "first"]

    def test_no_mutation_means_no_snapshot(self):
        event = Event()
        seen = []
        event.subscribe(lambda: seen.append(1))
        event.subscribe(lambda: seen.append(2))
        event.notify()
        assert seen == [1, 2]
        assert event._round is None

    def test_reentrant_notify(self):
        event = Event()
        seen = []

        def reenter():
            seen.append("outer")
            if len(seen) == 1:
                event.notify()

        event.subscribe(reenter)
        event.subscribe(lambda: seen.append("tail"))
        event.notify()
        # Outer round fires reenter + tail; the nested round does too.
        assert seen == ["outer", "outer", "tail", "tail"]


class TestSensitivityEngine:
    def test_sensitive_process_skipped_until_input_changes(self):
        engine = CycleEngine()
        src = Signal("src", width=8)
        dst = Signal("dst", width=8)
        engine.add_signal(src, dst)
        runs = []

        def comb():
            runs.append(engine.cycle)
            dst.drive(src.value + 1)

        engine.add_combinational(comb, sensitive_to=(src,))
        engine.step()  # initial evaluation (process starts dirty)
        baseline = len(runs)
        engine.run(3)  # src never changes -> no re-evaluation
        assert len(runs) == baseline
        src.drive(5)
        engine.step()
        assert len(runs) > baseline
        assert dst.value == 6

    def test_touch_forces_reevaluation(self):
        engine = CycleEngine()
        out = Signal("out", width=8)
        engine.add_signal(out)
        state = {"level": 0}
        handle = engine.add_combinational(
            lambda: out.drive(state["level"]), sensitive_to=()
        )
        engine.step()
        state["level"] = 9
        engine.run(2)
        assert out.value == 0  # engine cannot see the dict mutation
        handle.touch()
        engine.step()
        assert out.value == 9

    def test_static_process_runs_every_pass(self):
        engine = CycleEngine()
        count = Signal("count", width=16)
        engine.add_signal(count)
        runs = []
        engine.add_combinational(lambda: runs.append(True))
        engine.add_sequential(lambda: count.drive_next(count.value + 1))
        engine.run(3)
        # Two settles per cycle, at least one pass each.
        assert len(runs) >= 6


class TestSingleCandidateFastPath:
    def _ctx(self, now=0):
        return ArbitrationContext(now=now)

    def test_stats_match_filter_chain_semantics(self):
        arbiter = AhbPlusArbiter(num_masters=4)
        lone = Candidate(txn=_txn(master=2))
        winner = arbiter.choose([lone], self._ctx())
        assert winner is lone
        stats = arbiter.filter_stats()
        # Narrowing filters skip singleton sets entirely...
        for name in ("request", "hazard", "urgency", "real-time", "pressure", "bank"):
            assert stats[name]["applied"] == 0
        # ...while the mandatory tie-break still counts an application.
        assert stats["tie-break"]["applied"] == 1
        assert stats["tie-break"]["narrowed"] == 0
        assert arbiter.rounds == 1

    def test_round_robin_rotation_preserved_by_fast_path(self):
        """A lone winner still rotates priority, as the full chain did."""
        arbiter = AhbPlusArbiter(tie_break="round_robin", num_masters=4)
        lone = Candidate(txn=_txn(master=1))
        arbiter.choose([lone], self._ctx())
        # After master 1 wins, master 2 outranks master 0 on the next tie.
        pair = [Candidate(txn=_txn(master=0)), Candidate(txn=_txn(master=2))]
        winner = arbiter.choose(pair, self._ctx())
        assert winner.master == 2

    def test_multi_candidate_path_unchanged(self):
        arbiter = AhbPlusArbiter(num_masters=4)
        pair = [Candidate(txn=_txn(master=3)), Candidate(txn=_txn(master=1))]
        winner = arbiter.choose(pair, self._ctx())
        assert winner.master == 1  # fixed priority: lowest index
        assert arbiter.filter_stats()["request"]["applied"] == 1


class TestProfilingGate:
    def test_disabled_monitor_is_a_noop(self):
        monitor = BusMonitor(enabled=False)
        txn = _txn(kind=AccessKind.WRITE)
        txn.finished_at = 10
        monitor(txn, 2, 3, 10)
        assert monitor.transactions == 0
        assert monitor.bytes_moved == 0
        assert monitor.ports == {}

    def test_enable_resumes_accumulation(self):
        monitor = BusMonitor(enabled=False)
        txn = _txn(kind=AccessKind.WRITE)
        txn.finished_at = 10
        monitor(txn, 2, 3, 10)
        monitor.enable()
        monitor(txn, 2, 3, 10)
        assert monitor.transactions == 1
        monitor.disable()
        monitor(txn, 2, 3, 10)
        assert monitor.transactions == 1


class TestQosFastLookup:
    def test_out_of_range_master_still_raises(self):
        from repro.core.qos import QosRegisterFile

        qos = QosRegisterFile(2)
        with pytest.raises(ConfigError):
            qos.is_real_time(5)
        with pytest.raises(ConfigError):
            qos.is_real_time(-1)
