"""Tests for the transaction-port API (paper sections 3.1-3.2)."""

import pytest

from repro.core.config import AhbPlusConfig
from repro.core.ports import InteractiveAhbPlus, PortStatus
from repro.ddr.controller import DdrControllerTlm
from repro.ddr.timing import DDR_TEST
from repro.errors import ConfigError


def system(**cfg_kwargs):
    cfg_kwargs.setdefault("num_masters", 2)
    ddrc = DdrControllerTlm(timing=DDR_TEST, refresh_enabled=False)
    return InteractiveAhbPlus(ddrc, AhbPlusConfig(**cfg_kwargs))


class TestTransactionPort:
    def test_check_grant_true_on_idle_bus(self):
        sys = system()
        assert sys.port(0).check_grant() is True

    def test_read_returns_ok_and_data(self):
        sys = system()
        port = sys.port(0)
        port.write(0x40, [7, 8], posted=False)
        status, data = port.read(0x40, beats=2)
        assert status is PortStatus.OK
        assert data == [7, 8]

    def test_posted_write_returns_immediately(self):
        sys = system()
        port = sys.port(0)
        before = sys.now
        status = port.write(0x80, [1], posted=True)
        assert status is PortStatus.POSTED
        assert sys.now == before  # no bus cycles consumed
        assert port.posted_writes == 1

    def test_posted_write_then_read_drains_first(self):
        sys = system()
        port = sys.port(0)
        port.write(0x100, [42], posted=True)
        status, data = port.read(0x100)
        assert status is PortStatus.OK
        assert data == [42]

    def test_drain_write_buffer(self):
        sys = system()
        port = sys.port(0)
        port.write(0x0, [1], posted=True)
        port.write(0x20, [2], posted=True)
        sys.drain_write_buffer()
        assert sys.write_buffer.is_empty

    def test_posted_falls_back_when_full(self):
        sys = system(write_buffer_depth=1)
        port = sys.port(0)
        assert port.write(0x0, [1]) is PortStatus.POSTED
        # Buffer full: second posted write rides the bus instead.
        assert port.write(0x20, [2]) is PortStatus.OK

    def test_clock_advances_with_traffic(self):
        sys = system()
        port = sys.port(0)
        port.read(0x0, beats=4)
        assert sys.now > 0

    def test_idle_advances_clock(self):
        sys = system()
        sys.idle(100)
        assert sys.now == 100
        with pytest.raises(ConfigError):
            sys.idle(-1)

    def test_port_index_validated(self):
        sys = system()
        with pytest.raises(ConfigError):
            sys.port(9)

    def test_port_instances_are_cached(self):
        sys = system()
        assert sys.port(1) is sys.port(1)

    def test_time_monotonic_across_ports(self):
        sys = system()
        a, b = sys.port(0), sys.port(1)
        a.read(0x0)
        t1 = sys.now
        b.read(0x1000)
        assert sys.now > t1
