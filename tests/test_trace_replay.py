"""Trace-driven playback across engines: the Table-1 methodology, literal.

Pins the PR's acceptance criteria:

* a trace captured at TLM, bound as a trace-backed ``Workload`` inside
  a ``SystemSpec``, replays at plain-AHB and RTL with an identical
  per-transaction (master, kind, addr, beats, data) sequence,
* the spec — trace and all — survives the JSON round-trip and the
  process-backend ``SweepRunner`` (records loadable in-worker from a
  path or an inline payload), and
* the ``trace-replay`` scenario is registered and runnable at every
  level.
"""

import json

import pytest

from repro.analysis import trace_diff
from repro.errors import TrafficError
from repro.exec import SweepRunner
from repro.system import PlatformBuilder, scenario
from repro.system.spec import SystemSpec, sweep
from repro.traffic import (
    REPLAY,
    TraceRecorder,
    TraceSource,
    Workload,
    save_trace,
)

TRANSACTIONS = 15


def _capture(level="tlm", transactions=TRANSACTIONS):
    """Run pattern-A at *level* and return the recorded trace."""
    spec = scenario("paper-pattern-a", transactions=transactions)
    platform = PlatformBuilder(spec).build(level)
    recorder = TraceRecorder()
    platform.attach(recorder)
    platform.run()
    return recorder.records


def _replay(spec, level):
    platform = PlatformBuilder(spec).build(level)
    recorder = TraceRecorder()
    platform.attach(recorder)
    result = platform.run()
    return recorder.records, result


@pytest.fixture(scope="module")
def captured():
    return _capture()


@pytest.fixture(scope="module")
def replay_spec(captured):
    return scenario("trace-replay", source=tuple(captured))


class TestTraceBackedWorkload:
    def test_from_trace_synthesizes_master_specs(self, captured):
        workload = Workload.from_trace(tuple(captured))
        assert workload.source == "trace"
        assert workload.num_masters == 4
        assert all(spec.pattern is REPLAY for spec in workload.masters)
        assert [spec.transactions for spec in workload.masters] == [
            TRANSACTIONS
        ] * 4

    def test_from_trace_rejects_bad_shapes(self, captured):
        with pytest.raises(TrafficError, match="records"):
            Workload.from_trace(())
        # A trace holding only write-buffer bookkeeping has no masters.
        from dataclasses import replace

        from repro.ahb.transaction import WRITE_BUFFER_MASTER

        drains_only = (replace(captured[0], master=WRITE_BUFFER_MASTER),)
        with pytest.raises(TrafficError, match="no records"):
            Workload.from_trace(drains_only)
        with pytest.raises(TrafficError, match="num_masters"):
            Workload.from_trace(tuple(captured), num_masters=2)
        with pytest.raises(TrafficError, match="names"):
            Workload.from_trace(tuple(captured), master_names=["a"])

    def test_trace_workload_validation(self, captured):
        workload = Workload.from_trace(tuple(captured))
        with pytest.raises(TrafficError, match="scaled"):
            workload.scaled(0.5)
        with pytest.raises(TrafficError, match="trace"):
            Workload("bad", workload.masters, source="trace")  # no trace=

    def test_preserve_issue_times_overrides_prepared_source(self, captured):
        source = TraceSource(records=tuple(captured))  # anchored default
        workload = Workload.from_trace(source, preserve_issue_times=False)
        assert workload.trace.preserve_issue_times is False
        master = workload.build_masters()[0]
        assert master.earliest_request() == 0  # closed loop: no anchor
        kept = Workload.from_trace(source)
        assert kept.trace.preserve_issue_times is True

    def test_workload_json_round_trip(self, captured):
        workload = Workload.from_trace(tuple(captured))
        clone = Workload.from_dict(json.loads(json.dumps(workload.to_dict())))
        assert clone == workload
        items = clone.build_masters()[0]._items
        assert items is not None  # builds without touching disk

    def test_spec_json_round_trip(self, replay_spec):
        clone = SystemSpec.from_dict(
            json.loads(json.dumps(replay_spec.to_dict()))
        )
        assert clone == replay_spec


class TestCrossEngineEquivalence:
    def test_tlm_capture_replays_identically_everywhere(self, replay_spec):
        """The acceptance criterion: capture at TLM, replay at RTL and
        plain-AHB, per-transaction (master, kind, addr, beats, data)
        sequences identical."""
        reference, _ = _replay(replay_spec, "tlm")
        for level in ("plain", "rtl"):
            records, result = _replay(replay_spec, level)
            assert result.transactions == 4 * TRANSACTIONS
            diff = trace_diff(reference, records)
            assert diff.functionally_identical, (
                f"tlm vs {level}: {diff.summary()}\n"
                + "\n".join(m.describe() for m in diff.mismatches[:5])
            )

    def test_rtl_capture_replays_at_tlm(self):
        """RTL-recorded traces carry sound timestamps (the recorder
        asserts stamped-vs-observed consistency) and replay cleanly."""
        rtl_trace = _capture("rtl", transactions=8)
        spec = scenario("trace-replay", source=tuple(rtl_trace))
        replayed, _ = _replay(spec, "tlm")
        diff = trace_diff(rtl_trace, replayed)
        assert diff.functionally_identical, diff.summary()

    def test_trace_diff_flags_divergence(self, captured):
        from dataclasses import replace

        tampered = list(captured)
        tampered[3] = replace(tampered[3], addr=tampered[3].addr ^ 0x40)
        diff = trace_diff(captured, tampered)
        assert not diff.functionally_identical
        assert diff.mismatches[0].field == "addr"
        assert "DIFFERENT" in diff.summary()

    def test_preserved_issue_times_reproduce_capture_timing(
        self, captured, replay_spec
    ):
        """Replaying at the capture engine lands on the captured cycles:
        the issue anchors reconstruct the original arrival process."""
        records, _ = _replay(replay_spec, "tlm")
        diff = trace_diff(captured, records)
        assert diff.functionally_identical
        assert diff.max_finish_skew == 0


class TestTraceSweeps:
    def test_engine_axis_process_sweep_matches_serial(self, replay_spec):
        grid = sweep(replay_spec, axis="engine", values=["tlm", "plain", "rtl"])
        serial = SweepRunner(backend="serial").run(grid)
        process = SweepRunner(backend="process", workers=2).run(grid)
        assert serial == process

    def test_path_backed_spec_loads_in_worker(self, captured, tmp_path):
        path = tmp_path / "pattern_a.jsonl"
        save_trace(captured, path)
        spec = scenario("trace-replay", source=str(path))
        assert spec.workload.trace == TraceSource(path=str(path))
        grid = sweep(spec, axis="write_buffer_depth", values=[1, 4])
        serial = SweepRunner(backend="serial").run(grid)
        process = SweepRunner(backend="process", workers=2).run(grid)
        assert serial == process
        assert serial[0].cycles >= serial[1].cycles  # deeper buffer helps


class TestScenarioRegistry:
    def test_trace_replay_registered_and_self_capturing(self):
        spec = scenario("trace-replay", transactions=6)
        assert spec.workload.source == "trace"
        assert spec.workload.total_transactions == 24
        _records, result = _replay(spec, "tlm")
        assert result.transactions == 24

    def test_capture_kwargs_rejected_with_source(self, captured):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="fresh capture"):
            scenario("trace-replay", source=tuple(captured), transactions=9)
        with pytest.raises(ConfigError, match="archived"):
            scenario("trace-replay", num_masters=8)

    def test_qos_reattaches_to_archived_rt_capture(self):
        """A trace archives deadlines but not the QoS register
        programming; the scenario forwards it for archived sources."""
        from repro.core.qos import QosSetting

        rt_trace = _capture_scenario("paper-pattern-c")
        settings = {
            0: QosSetting(real_time=True, objective_cycles=180),
            1: QosSetting(real_time=True, objective_cycles=160),
        }
        spec = scenario("trace-replay", source=tuple(rt_trace), qos=settings)
        assert spec.workload.qos_map() == settings
        assert set(spec.config().qos) == {0, 1}
        bare = scenario("trace-replay", source=tuple(rt_trace))
        assert bare.workload.qos_map() == {}


def _capture_scenario(name, transactions=8):
    spec = scenario(name, transactions=transactions)
    platform = PlatformBuilder(spec).build("tlm")
    recorder = TraceRecorder()
    platform.attach(recorder)
    platform.run()
    return recorder.records
