"""Tests for traffic patterns, generation, workloads and traces."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.ahb.burst import check_burst_legal
from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.ahb.types import AccessKind
from repro.core import build_tlm_platform
from repro.core.write_buffer import WriteBuffer
from repro.traffic import (
    CPU,
    DMA,
    VIDEO,
    TraceRecord,
    TraceRecorder,
    TraceSource,
    TrafficPattern,
    bank_striped_workload,
    generate_items,
    load_trace,
    merge_traces,
    named_pattern,
    remap_addresses,
    remap_masters,
    replay_items,
    saturating_workload,
    single_master_workload,
    table1_workloads,
    time_scale,
)
from repro.errors import TrafficError

from dataclasses import replace


def _record(master=0, addr=0, issued_at=0, kind="read", beats=4, data=(), **kw):
    """A hand-built record with sane defaults for unit tests."""
    base = dict(
        master=master,
        kind=kind,
        addr=addr,
        beats=beats,
        size_bytes=4,
        wrapping=False,
        data=list(data),
        issued_at=issued_at,
        granted_at=issued_at + 1,
        started_at=issued_at + 2,
        finished_at=issued_at + 2 + beats,
        via_write_buffer=False,
    )
    base.update(kw)
    return TraceRecord(**base)


class TestPatterns:
    def test_named_lookup(self):
        assert named_pattern("cpu") is CPU
        with pytest.raises(TrafficError):
            named_pattern("quantum")

    def test_validation(self):
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", read_fraction=1.5)
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", burst_mix=())
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", think_range=(5, 2))
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", stride_bytes=1)

    def test_rt_flag(self):
        assert VIDEO.is_real_time and not CPU.is_real_time


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        a = generate_items(CPU, 0, 50, seed=7)
        b = generate_items(CPU, 0, 50, seed=7)
        assert [(i.txn.addr, i.txn.beats, i.think_cycles) for i in a] == [
            (i.txn.addr, i.txn.beats, i.think_cycles) for i in b
        ]

    def test_different_seeds_differ(self):
        a = generate_items(CPU, 0, 50, seed=7)
        b = generate_items(CPU, 0, 50, seed=8)
        assert [i.txn.addr for i in a] != [i.txn.addr for i in b]

    @settings(max_examples=25)
    @given(seed=st.integers(0, 10_000))
    def test_all_generated_traffic_is_protocol_legal(self, seed):
        for pattern in (CPU, DMA, VIDEO):
            for item in generate_items(pattern, 0, 30, seed):
                txn = item.txn
                check_burst_legal(txn)
                assert txn.addr % txn.size_bytes == 0
                end = pattern.base_addr + pattern.addr_span
                assert pattern.base_addr <= txn.addr < end
                assert txn.addr + txn.total_bytes <= end

    def test_periodic_pattern_sets_schedule(self):
        items = generate_items(VIDEO, 0, 5, seed=1)
        assert [i.not_before for i in items] == [
            k * VIDEO.period for k in range(5)
        ]
        assert all(i.absolute_deadline is not None for i in items)

    def test_write_items_carry_data(self):
        writer = replace(CPU, read_fraction=0.0)
        for item in generate_items(writer, 0, 10, seed=3):
            assert item.txn.is_write
            assert len(item.txn.data) == item.txn.beats

    def test_stride_pattern_advances_by_stride(self):
        strided = replace(
            DMA,
            sequential_fraction=1.0,
            stride_bytes=0x1000,
            burst_mix=((4, 1.0),),
            addr_span=0x10000,
        )
        items = generate_items(strided, 0, 4, seed=1)
        addrs = [i.txn.addr for i in items]
        assert addrs == [0x0, 0x1000, 0x2000, 0x3000]

    def test_negative_count_rejected(self):
        with pytest.raises(TrafficError):
            generate_items(CPU, 0, -1, seed=0)


class TestWorkloads:
    def test_table1_suite_shapes(self):
        suites = table1_workloads(20)
        assert [w.name for w in suites] == ["pattern_a", "pattern_b", "pattern_c"]
        for workload in suites:
            assert workload.num_masters == 4
            assert workload.total_transactions == 80

    def test_qos_map_only_rt_masters(self):
        workload = table1_workloads(10)[2]
        assert set(workload.qos_map()) == {0, 1}

    def test_disjoint_windows(self):
        workload = table1_workloads(10)[0]
        windows = [
            (spec.pattern.base_addr, spec.pattern.base_addr + spec.pattern.addr_span)
            for spec in workload.masters
        ]
        for (lo1, hi1), (lo2, hi2) in zip(windows, windows[1:]):
            assert hi1 <= lo2 or hi2 <= lo1

    def test_scaled(self):
        workload = single_master_workload(100).scaled(0.5)
        assert workload.total_transactions == 50

    def test_with_seed(self):
        assert single_master_workload(10).with_seed(42).seed == 42

    def test_saturating_has_low_priority_rt(self):
        workload = saturating_workload(10)
        rt = list(workload.qos_map())
        assert rt == [workload.num_masters - 1]

    def test_bank_striped_masters_own_banks(self):
        from repro.ddr.commands import decode_address
        from repro.ddr.timing import DDR_266

        workload = bank_striped_workload(10)
        for index, spec in enumerate(workload.masters):
            items = generate_items(spec.pattern, index, 10, workload.seed)
            banks = {
                decode_address(i.txn.addr, DDR_266).bank for i in items
            }
            assert banks == {index}


class TestTrace:
    def test_record_dump_load_roundtrip(self):
        platform = build_tlm_platform(single_master_workload(15))
        recorder = TraceRecorder()
        platform.bus.add_observer(recorder)
        platform.run()
        assert len(recorder) == 15
        buffer = io.StringIO()
        recorder.dump(buffer)
        buffer.seek(0)
        records = load_trace(buffer)
        assert len(records) == 15
        assert records[0].master == 0

    def test_replay_items_preserve_issue_times(self):
        platform = build_tlm_platform(single_master_workload(10))
        recorder = TraceRecorder()
        platform.bus.add_observer(recorder)
        platform.run()
        items = replay_items(recorder.records, master=0)
        assert len(items) == 10
        assert all(i.not_before is not None for i in items)

    def test_malformed_trace_rejected(self):
        with pytest.raises(TrafficError):
            load_trace(io.StringIO("not json\n"))

    def test_by_master_grouping(self):
        platform = build_tlm_platform(table1_workloads(5)[0])
        recorder = TraceRecorder()
        platform.bus.add_observer(recorder)
        platform.run()
        grouped = recorder.by_master()
        assert sum(len(v) for v in grouped.values()) == len(recorder)

    def test_multi_master_capture_is_complete_per_master(self):
        """``drains="origin"`` archives posted writes under their master.

        Even with write-buffer absorption in play, every master's record
        set is exactly the stream it issued — the property trace-backed
        workloads replay.
        """
        workload = table1_workloads(8)[0]
        platform = build_tlm_platform(workload)
        recorder = TraceRecorder()
        platform.bus.add_observer(recorder)
        result = platform.run()
        assert result.absorbed_writes > 0  # the interesting case
        grouped = recorder.by_master()
        assert set(grouped) == {0, 1, 2, 3}
        assert all(len(v) == 8 for v in grouped.values())


class TestRecorderTimestamps:
    """Regression: the recorder trusts the bus observer's cycles."""

    def test_observer_args_fill_unstamped_fields(self):
        txn = Transaction(master=0, kind=AccessKind.READ, addr=0, beats=4)
        txn.issued_at = 3
        recorder = TraceRecorder()
        recorder(txn, 5, 6, 9)
        record = recorder.records[0]
        assert (record.granted_at, record.started_at, record.finished_at) == (
            5,
            6,
            9,
        )

    def test_stale_stamped_timestamp_rejected(self):
        txn = Transaction(master=0, kind=AccessKind.READ, addr=0, beats=4)
        txn.granted_at = 3  # stale: disagrees with the bus's grant cycle
        recorder = TraceRecorder()
        with pytest.raises(TrafficError, match="stale"):
            recorder(txn, 5, 6, 9)

    def _drain(self):
        origin = Transaction(
            master=2, kind=AccessKind.WRITE, addr=64, beats=1, data=[7]
        )
        origin.issued_at = 10
        buffer = WriteBuffer(depth=4)
        drain = buffer.absorb(origin, 12)
        origin.finished_at = 12
        origin.via_write_buffer = True
        drain.granted_at = 20
        drain.started_at = 21
        drain.finished_at = 22
        return origin, drain

    def test_drain_records_origin_by_default(self):
        origin, drain = self._drain()
        recorder = TraceRecorder()
        recorder(drain, 20, 21, 22)
        record = recorder.records[0]
        assert record.master == 2
        assert record.via_write_buffer
        assert record.issued_at == 10 and record.finished_at == 12
        assert record.granted_at == -1  # the origin never owned the bus

    def test_drain_modes_bus_and_skip(self):
        origin, drain = self._drain()
        bus_mode = TraceRecorder(drains="bus")
        bus_mode(drain, 20, 21, 22)
        assert bus_mode.records[0].master == WRITE_BUFFER_MASTER
        skip = TraceRecorder(drains="skip")
        skip(drain, 20, 21, 22)
        assert len(skip) == 0
        with pytest.raises(TrafficError):
            TraceRecorder(drains="both")


class TestReplayOrdering:
    """Regression: replay re-sorts completion-ordered records by issue."""

    def test_out_of_completion_order_records_replay_in_issue_order(self):
        records = [
            _record(master=0, addr=0x200, issued_at=100),
            _record(master=0, addr=0x100, issued_at=50),
        ]
        items = replay_items(records, master=0)
        assert [i.txn.addr for i in items] == [0x100, 0x200]
        assert [i.not_before for i in items] == [50, 100]

    def test_issue_cycle_ties_break_on_capture_uid(self):
        """A posted write absorbed in the cycle its successor issues
        shares the issue stamp; the capture uid restores offered order."""
        records = [
            _record(master=0, addr=0x200, issued_at=50, uid=9),
            _record(master=0, addr=0x100, issued_at=50, uid=5),
        ]
        items = replay_items(records, master=0)
        assert [i.txn.addr for i in items] == [0x100, 0x200]

    def test_closed_loop_replay_drops_issue_anchors(self):
        records = [
            _record(master=0, addr=0x200, issued_at=100),
            _record(master=0, addr=0x100, issued_at=50),
        ]
        items = replay_items(records, master=0, preserve_issue_times=False)
        assert [i.txn.addr for i in items] == [0x100, 0x200]
        assert all(i.not_before is None for i in items)
        assert all(i.think_cycles == 0 for i in items)

    def test_replay_restores_deadline_and_write_data(self):
        records = [
            _record(master=1, kind="write", beats=2, data=[1, 2], deadline=500),
            _record(master=1, addr=0x40, issued_at=9, data=[3, 3, 3, 3]),
        ]
        items = replay_items(records, master=1)
        assert items[0].absolute_deadline == 500
        assert items[0].txn.data == [1, 2]
        # Read data is produced by the slave on replay, never offered.
        assert items[1].txn.data == []


class TestTraceValidation:
    """Regression: a malformed trace fails loudly at load time."""

    def _load(self, payload: str):
        return load_trace(io.StringIO(payload))

    def _line(self, **overrides):
        import json
        from dataclasses import asdict

        payload = asdict(_record())
        payload.update(overrides)
        for key in [k for k, v in payload.items() if v is ...]:
            del payload[key]
        return json.dumps(payload) + "\n"

    def test_bad_kind_string_is_traffic_error_with_line(self):
        with pytest.raises(TrafficError, match="line 2.*kind"):
            self._load(self._line() + self._line(kind="x"))

    def test_wrong_typed_fields_rejected(self):
        for overrides in (
            {"data": "0xdead"},
            {"data": [1, "2"]},
            {"addr": "64"},
            {"addr": True},
            {"wrapping": 1},
            {"beats": 0},
            {"master": -1},
            {"deadline": -5},
        ):
            with pytest.raises(TrafficError, match="line 1"):
                self._load(self._line(**overrides))

    def test_missing_and_unknown_fields_rejected(self):
        with pytest.raises(TrafficError, match="missing"):
            self._load(self._line(addr=...))
        with pytest.raises(TrafficError, match="unknown"):
            self._load(self._line(hx=1))

    def test_pre_deadline_traces_still_load(self):
        records = self._load(self._line(deadline=...))
        assert records[0].deadline is None

    def test_non_object_line_rejected(self):
        with pytest.raises(TrafficError, match="line 1"):
            self._load("[1, 2]\n")

    def test_protocol_constraints_checked_at_load(self):
        """Protocol-illegal records fail as TrafficError with the line,
        not as ProtocolError at first replay (possibly in a worker)."""
        for overrides in (
            {"size_bytes": 3},
            {"addr": 2},  # not 4-byte aligned
            {"wrapping": True, "beats": 5},
            {"kind": "write", "beats": 4, "data": [1, 2]},
        ):
            with pytest.raises(TrafficError, match="line 1"):
                self._load(self._line(**overrides))


class TestTraceTransforms:
    def test_time_scale_scales_stamps_and_skips_never_happened(self):
        record = _record(issued_at=10, deadline=100, granted_at=-1)
        (scaled,) = time_scale([record], 2.0)
        assert scaled.issued_at == 20
        assert scaled.deadline == 200
        assert scaled.granted_at == -1
        with pytest.raises(TrafficError):
            time_scale([record], 0)

    def test_remap_addresses_validates_alignment_and_boundary(self):
        (moved,) = remap_addresses([_record(addr=0x100)], 0x400)
        assert moved.addr == 0x500
        with pytest.raises(TrafficError, match="alignment"):
            remap_addresses([_record(addr=0x100)], 2)
        with pytest.raises(TrafficError, match="1 KB"):
            # 4 beats x 4B at 0x3F8 would cross the 1 KB line.
            remap_addresses([_record(addr=0x0)], 0x3F8)
        with pytest.raises(TrafficError, match="below zero"):
            remap_addresses([_record(addr=0x100)], -0x400)

    def test_remap_masters(self):
        records = [_record(master=0), _record(master=3)]
        mapped = remap_masters(records, {3: 1})
        assert [r.master for r in mapped] == [0, 1]
        with pytest.raises(TrafficError):
            remap_masters(records, {0: -1})

    def test_merge_traces_orders_by_issue(self):
        a = [_record(master=0, issued_at=10), _record(master=0, issued_at=30)]
        b = [_record(master=1, issued_at=20)]
        merged = merge_traces(a, b)
        assert [r.issued_at for r in merged] == [10, 20, 30]


class TestTraceSource:
    def test_exactly_one_of_path_or_records(self):
        with pytest.raises(TrafficError):
            TraceSource()
        with pytest.raises(TrafficError):
            TraceSource(path="x.jsonl", records=(_record(),))

    def test_path_source_loads_and_validates(self, tmp_path):
        from repro.traffic import save_trace

        path = tmp_path / "t.jsonl"
        save_trace([_record(master=1)], path)
        source = TraceSource(path=str(path))
        assert source.masters() == (1,)
        missing = TraceSource(path=str(tmp_path / "nope.jsonl"))
        with pytest.raises(TrafficError):
            missing.resolve()

    def test_round_trip(self):
        import json

        source = TraceSource(records=(_record(master=2),))
        clone = TraceSource.from_dict(json.loads(json.dumps(source.to_dict())))
        assert clone == source
