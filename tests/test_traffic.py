"""Tests for traffic patterns, generation, workloads and traces."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.ahb.burst import check_burst_legal
from repro.core import build_tlm_platform
from repro.traffic import (
    CPU,
    DMA,
    VIDEO,
    TraceRecorder,
    TrafficPattern,
    bank_striped_workload,
    generate_items,
    load_trace,
    named_pattern,
    replay_items,
    saturating_workload,
    single_master_workload,
    table1_workloads,
)
from repro.errors import TrafficError

from dataclasses import replace


class TestPatterns:
    def test_named_lookup(self):
        assert named_pattern("cpu") is CPU
        with pytest.raises(TrafficError):
            named_pattern("quantum")

    def test_validation(self):
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", read_fraction=1.5)
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", burst_mix=())
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", think_range=(5, 2))
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", stride_bytes=1)

    def test_rt_flag(self):
        assert VIDEO.is_real_time and not CPU.is_real_time


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        a = generate_items(CPU, 0, 50, seed=7)
        b = generate_items(CPU, 0, 50, seed=7)
        assert [(i.txn.addr, i.txn.beats, i.think_cycles) for i in a] == [
            (i.txn.addr, i.txn.beats, i.think_cycles) for i in b
        ]

    def test_different_seeds_differ(self):
        a = generate_items(CPU, 0, 50, seed=7)
        b = generate_items(CPU, 0, 50, seed=8)
        assert [i.txn.addr for i in a] != [i.txn.addr for i in b]

    @settings(max_examples=25)
    @given(seed=st.integers(0, 10_000))
    def test_all_generated_traffic_is_protocol_legal(self, seed):
        for pattern in (CPU, DMA, VIDEO):
            for item in generate_items(pattern, 0, 30, seed):
                txn = item.txn
                check_burst_legal(txn)
                assert txn.addr % txn.size_bytes == 0
                end = pattern.base_addr + pattern.addr_span
                assert pattern.base_addr <= txn.addr < end
                assert txn.addr + txn.total_bytes <= end

    def test_periodic_pattern_sets_schedule(self):
        items = generate_items(VIDEO, 0, 5, seed=1)
        assert [i.not_before for i in items] == [
            k * VIDEO.period for k in range(5)
        ]
        assert all(i.absolute_deadline is not None for i in items)

    def test_write_items_carry_data(self):
        writer = replace(CPU, read_fraction=0.0)
        for item in generate_items(writer, 0, 10, seed=3):
            assert item.txn.is_write
            assert len(item.txn.data) == item.txn.beats

    def test_stride_pattern_advances_by_stride(self):
        strided = replace(
            DMA,
            sequential_fraction=1.0,
            stride_bytes=0x1000,
            burst_mix=((4, 1.0),),
            addr_span=0x10000,
        )
        items = generate_items(strided, 0, 4, seed=1)
        addrs = [i.txn.addr for i in items]
        assert addrs == [0x0, 0x1000, 0x2000, 0x3000]

    def test_negative_count_rejected(self):
        with pytest.raises(TrafficError):
            generate_items(CPU, 0, -1, seed=0)


class TestWorkloads:
    def test_table1_suite_shapes(self):
        suites = table1_workloads(20)
        assert [w.name for w in suites] == ["pattern_a", "pattern_b", "pattern_c"]
        for workload in suites:
            assert workload.num_masters == 4
            assert workload.total_transactions == 80

    def test_qos_map_only_rt_masters(self):
        workload = table1_workloads(10)[2]
        assert set(workload.qos_map()) == {0, 1}

    def test_disjoint_windows(self):
        workload = table1_workloads(10)[0]
        windows = [
            (spec.pattern.base_addr, spec.pattern.base_addr + spec.pattern.addr_span)
            for spec in workload.masters
        ]
        for (lo1, hi1), (lo2, hi2) in zip(windows, windows[1:]):
            assert hi1 <= lo2 or hi2 <= lo1

    def test_scaled(self):
        workload = single_master_workload(100).scaled(0.5)
        assert workload.total_transactions == 50

    def test_with_seed(self):
        assert single_master_workload(10).with_seed(42).seed == 42

    def test_saturating_has_low_priority_rt(self):
        workload = saturating_workload(10)
        rt = list(workload.qos_map())
        assert rt == [workload.num_masters - 1]

    def test_bank_striped_masters_own_banks(self):
        from repro.ddr.commands import decode_address
        from repro.ddr.timing import DDR_266

        workload = bank_striped_workload(10)
        for index, spec in enumerate(workload.masters):
            items = generate_items(spec.pattern, index, 10, workload.seed)
            banks = {
                decode_address(i.txn.addr, DDR_266).bank for i in items
            }
            assert banks == {index}


class TestTrace:
    def test_record_dump_load_roundtrip(self):
        platform = build_tlm_platform(single_master_workload(15))
        recorder = TraceRecorder()
        platform.bus.add_observer(recorder)
        platform.run()
        assert len(recorder) == 15
        buffer = io.StringIO()
        recorder.dump(buffer)
        buffer.seek(0)
        records = load_trace(buffer)
        assert len(records) == 15
        assert records[0].master == 0

    def test_replay_items_preserve_issue_times(self):
        platform = build_tlm_platform(single_master_workload(10))
        recorder = TraceRecorder()
        platform.bus.add_observer(recorder)
        platform.run()
        items = replay_items(recorder.records, master=0)
        assert len(items) == 10
        assert all(i.not_before is not None for i in items)

    def test_malformed_trace_rejected(self):
        with pytest.raises(TrafficError):
            load_trace(io.StringIO("not json\n"))

    def test_by_master_grouping(self):
        platform = build_tlm_platform(table1_workloads(5)[0])
        recorder = TraceRecorder()
        platform.bus.add_observer(recorder)
        platform.run()
        grouped = recorder.by_master()
        assert sum(len(v) for v in grouped.values()) == len(recorder)
