"""Tests for the extended configuration space: wrapping bursts, wide
buses and multi-slave AHB+ topologies (paper §1's flexibility
requirements and §3.7's parameters)."""

from dataclasses import replace

import pytest

from repro.ahb.decoder import AddressMap
from repro.ahb.slave import SramSlave
from repro.ahb.master import TlmMaster
from repro.core import AhbPlusConfig, build_tlm_platform
from repro.core.bus import AhbPlusBusTlm
from repro.core.platform import config_for_workload
from repro.ddr.controller import DdrControllerTlm
from repro.ddr.timing import DDR_TEST
from repro.rtl import build_rtl_platform
from repro.traffic import (
    CPU,
    MasterSpec,
    Workload,
    generate_items,
    single_master_workload,
)


def wrap_pattern(index: int = 0):
    return replace(
        CPU,
        base_addr=index << 20,
        addr_span=1 << 20,
        burst_mix=((4, 0.5), (8, 0.3), (16, 0.2)),
        wrap_fraction=0.5,
    )


def wrap_workload(transactions: int = 40, masters: int = 2, seed: int = 3):
    specs = tuple(
        MasterSpec(f"wrap{i}", wrap_pattern(i), transactions)
        for i in range(masters)
    )
    return Workload("wrapping", specs, seed)


class TestWrappingBursts:
    def test_generator_emits_wrapping_bursts(self):
        items = generate_items(wrap_pattern(), 0, 60, seed=3)
        wrapped = [i.txn for i in items if i.txn.wrapping]
        assert wrapped, "wrap_fraction=0.5 should produce WRAPx bursts"
        for txn in wrapped:
            assert txn.beats in (4, 8, 16)
            block = txn.beats * txn.size_bytes
            assert (txn.addr // block) * block + block <= (1 << 20)

    def test_wrapping_functional_across_engines(self):
        workload = wrap_workload()
        method = build_tlm_platform(workload, engine="method")
        method.run()
        thread = build_tlm_platform(workload, engine="thread")
        thread.run()
        assert method.memory.equal_contents(thread.memory)

    def test_wrapping_functional_on_rtl(self):
        workload = wrap_workload(transactions=25, masters=1)
        rtl = build_rtl_platform(workload)
        rtl.run()
        tlm = build_tlm_platform(workload)
        tlm.run()
        assert rtl.memory.equal_contents(tlm.memory)
        for r, t in zip(rtl.agents[0].completed, tlm.masters[0].completed):
            if not r.is_write:
                assert r.data == t.data


class TestWideBus:
    @pytest.mark.parametrize("width", [8, 16])
    def test_wide_bus_platform_runs(self, width):
        workload = single_master_workload(30)
        cfg = replace(config_for_workload(workload), bus_width_bytes=width)
        platform = build_tlm_platform(workload, config=cfg)
        result = platform.run()
        assert result.transactions == 30
        assert platform.ddrc.bus_bytes == width

    def test_wide_bus_rtl_signals_sized(self):
        workload = single_master_workload(10)
        cfg = replace(config_for_workload(workload), bus_width_bytes=8)
        platform = build_rtl_platform(workload, config=cfg)
        assert platform.bus.hwdata.width == 64
        platform.run()


class TestMultiSlaveAhbPlus:
    def _dual_slave_bus(self):
        """AHB+ bus with the DDRC at 0 and an SRAM at 16 MiB."""
        amap = AddressMap()
        amap.add("ddr", 0x0000_0000, 1 << 24, slave_index=0)
        amap.add("sram", 0x0100_0000, 1 << 20, slave_index=1)
        ddrc = DdrControllerTlm(timing=DDR_TEST, refresh_enabled=False)
        sram = SramSlave(base_addr=0x0100_0000, size=1 << 20, wait_states=0)
        from repro.ahb.master import TrafficItem
        from repro.ahb.transaction import Transaction
        from repro.ahb.types import AccessKind

        items = [
            TrafficItem(
                Transaction(
                    master=0,
                    kind=AccessKind.WRITE,
                    addr=0x0,
                    beats=4,
                    data=[1, 2, 3, 4],
                )
            ),
            TrafficItem(
                Transaction(
                    master=0,
                    kind=AccessKind.WRITE,
                    addr=0x0100_0000,
                    beats=2,
                    data=[9, 8],
                ),
                think_cycles=2,
            ),
            TrafficItem(
                Transaction(master=0, kind=AccessKind.READ, addr=0x0, beats=4),
                think_cycles=2,
            ),
            TrafficItem(
                Transaction(
                    master=0, kind=AccessKind.READ, addr=0x0100_0000, beats=2
                ),
                think_cycles=2,
            ),
        ]
        master = TlmMaster(0, "cpu", items)
        bus = AhbPlusBusTlm(
            [master],
            [ddrc, sram],
            config=AhbPlusConfig(num_masters=1),
            address_map=amap,
        )
        return bus, master, ddrc, sram

    def test_routing_and_data(self):
        bus, master, ddrc, sram = self._dual_slave_bus()
        bus.run()
        assert master.completed[2].data == [1, 2, 3, 4]  # from the DDRC
        assert master.completed[3].data == [9, 8]  # from the SRAM
        assert ddrc.reads == 1 and sram.reads == 1

    def test_per_slave_bus_interfaces(self):
        bus, _, _, _ = self._dual_slave_bus()
        assert len(bus.bus_interfaces) == 2
        bus.run()
        # Only the DDRC-backed BI can report bank structure.
        assert bus.bus_interfaces[1].slave.idle_banks(0) == ~0
