"""Cross-model integration tests: the paper's claims at small scale."""

import pytest

from repro.analysis import run_table1
from repro.core import build_plain_platform, build_tlm_platform
from repro.rtl import build_rtl_platform
from repro.traffic import (
    saturating_workload,
    single_master_workload,
    table1_workloads,
)


class TestPaperClaims:
    def test_table1_average_accuracy(self):
        """Average TLM cycle error across the suites stays paper-grade."""
        result = run_table1(table1_workloads(60))
        assert result.all_functional
        assert result.average_error_pct <= 8.0  # paper: < 3 % at full scale
        # At least one suite should be nearly exact.
        assert min(s.total_error_pct for s in result.suites) < 1.0

    def test_qos_guarantee_is_the_ahbplus_difference(self):
        """Plain AHB starves the low-priority RT stream; AHB+ does not."""
        workload = saturating_workload(30)
        plain = build_plain_platform(workload)
        plain.run()
        rt = workload.num_masters - 1
        plain_misses = sum(
            1 for t in plain.masters[rt].completed if t.met_deadline is False
        )
        ahbp = build_tlm_platform(workload)
        result = ahbp.run()
        assert plain_misses > 0
        assert result.rt_deadline_misses == 0

    def test_three_models_agree_functionally(self):
        """Method TLM, thread TLM and RTL compute identical memory images."""
        workload = table1_workloads(30)[0]
        method = build_tlm_platform(workload, engine="method")
        method.run()
        thread = build_tlm_platform(workload, engine="thread")
        thread.run()
        rtl = build_rtl_platform(workload)
        rtl.run()
        assert method.memory.equal_contents(thread.memory)
        assert method.memory.equal_contents(rtl.memory)

    def test_rtl_transaction_conservation(self):
        workload = table1_workloads(30)[1]
        rtl = build_rtl_platform(workload)
        result = rtl.run()
        assert result.transactions == workload.total_transactions

    def test_seed_reproducibility_across_runs(self):
        workload = single_master_workload(25)
        first = build_tlm_platform(workload).run()
        second = build_tlm_platform(workload).run()
        assert first.cycles == second.cycles
        assert first.bytes_transferred == second.bytes_transferred
