"""repro.lint: rule fixtures, the clean-run gate, and hook hygiene.

Three layers of coverage:

* every rule is demonstrated by a seeded fixture under
  ``tests/data/lint/`` firing with the exact rule ID and location —
  including the acceptance fixture: a scratch BusMux copy with one
  ``sensitive_to`` entry deleted, caught **purely statically** (zero
  cycles, no workload);
* the shipped tree is lint-clean (``make lint`` exit-0 guarantee), with
  only the documented waivers present; and
* the instrumentation hooks are invisible outside a lint elaboration
  (plain :class:`Signal` construction, no observer) — the structural
  half of the zero-hot-path-cost claim that ``make bench`` quantifies.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.kernel import cycle as cycle_mod
from repro.kernel import signal as signal_mod
from repro.kernel.signal import Signal, make_signal
from repro.lint import (
    RULES,
    lint_elaboration,
    run_lint,
    run_netlist_rules,
    run_source_rules,
)
from repro.lint.trace import TracedSignal

FIXTURES = Path(__file__).parent / "data" / "lint"


def _load_fixture(name):
    spec = importlib.util.spec_from_file_location(
        f"lint_fixture_{name}", FIXTURES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _netlist_findings(name):
    module = _load_fixture(name)
    with lint_elaboration() as netlist:
        module.build()
    return run_netlist_rules(netlist, name)


# -- netlist rule fixtures ---------------------------------------------------


NETLIST_CASES = [
    ("missing_sensitivity", "NET-SENS", "Adder.evaluate", "fix.b"),
    ("seq_wake_gap", "NET-WAKE", "Counter.update", "fix.enable"),
    ("multi_driver", "NET-MULTI", "fix.shared", "fix.shared"),
    ("comb_loop", "NET-LOOP", "Feedback.forward", "Feedback.backward"),
    ("dead_signal", "NET-DEAD", "fix.debug_tap", "fix.debug_tap"),
]


@pytest.mark.parametrize(
    "fixture,rule,loc_part,msg_part",
    NETLIST_CASES,
    ids=[c[1] for c in NETLIST_CASES],
)
def test_netlist_fixture_fires(fixture, rule, loc_part, msg_part):
    findings = _netlist_findings(fixture)
    # Exactly the seeded violation, nothing else.
    assert [f.rule for f in findings] == [rule]
    finding = findings[0]
    assert finding.location == f"{fixture}:{loc_part}"
    assert msg_part in finding.message
    assert not finding.waived


def test_phase_fixture_fires_both_directions():
    findings = _netlist_findings("phase_misuse")
    assert sorted(f.rule for f in findings) == ["NET-PHASE", "NET-PHASE"]
    by_loc = {f.location: f for f in findings}
    comb = by_loc["phase_misuse:PhaseMixer.bad_comb"]
    assert "fix.reg_out.drive_next()" in comb.message
    seq = by_loc["phase_misuse:PhaseMixer.bad_seq"]
    assert "fix.comb_out.drive()" in seq.message


def test_deleted_sens_entry_caught_statically():
    """Acceptance bar: a scratch BusMux copy minus one sensitive_to
    entry is caught without running any workload or cycle."""
    findings = _netlist_findings("mux_missing_hfault")
    assert sorted(f.rule for f in findings) == ["NET-SENS", "NET-SENS"]
    signals = set()
    for finding in findings:
        assert finding.location == (
            "mux_missing_hfault:ScratchBusMux.evaluate_address"
        )
        signals.add(finding.message.split()[1])
    assert signals == {"m0.hfault", "m1.hfault"}


# -- source rule fixtures ----------------------------------------------------


SOURCE_CASES = [
    ("unseeded_random", "DET-RAND", [7, 11]),
    ("wall_clock", "DET-TIME", [8, 12]),
    ("mutable_default", "DET-MUTDEF", [4]),
    ("lambda_collector", "DET-PICKLE", [5, 12]),
    ("bad_schema", "DET-SCHEMA", [5, 9, 12]),
]


@pytest.mark.parametrize(
    "fixture,rule,lines", SOURCE_CASES, ids=[c[1] for c in SOURCE_CASES]
)
def test_source_fixture_fires(fixture, rule, lines):
    path = FIXTURES / f"{fixture}.py"
    findings = run_source_rules([path])
    assert [f.rule for f in findings] == [rule] * len(lines)
    assert [f.location for f in findings] == [
        f"{fixture}.py:{line}" for line in lines
    ]


# -- shipped-tree clean run --------------------------------------------------


def test_shipped_tree_is_clean():
    """The make-lint gate: full run over every registered scenario, the
    fuzz matrix, and src/ exits 0 — only documented waivers remain."""
    report = run_lint(fuzz_seeds=(0, 1))
    assert report.exit_code == 0, report.render_text()
    assert not report.errors
    # The documented waivers are present, not silently dropped: the DDRC
    # mid-burst hwdata read and the modelled BI status outputs.
    waived_rules = {f.rule for f in report.waived}
    assert waived_rules == {"NET-WAKE", "NET-DEAD", "DET-RAND"}
    assert all(f.waive_reason for f in report.waived)


def test_shipped_busmux_declares_every_read():
    """The real BusMux (unlike the scratch fixture) is NET-SENS clean."""
    from repro.system import build_platform, scenario

    spec = scenario("multi-slave-soc", transactions=2)
    with lint_elaboration() as netlist:
        build_platform(spec, "rtl")
    findings = run_netlist_rules(netlist, "soc")
    mux_findings = [f for f in findings if "BusMux" in f.location]
    assert mux_findings == []


def test_json_report_shape(capsys):
    from repro.lint.__main__ import main

    code = main(
        ["--scenario", "paper", "--fuzz-seeds", "0", "--no-src",
         "--cycles", "0", "--format", "json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["errors"] == 0
    assert payload["waived"] == len(
        [f for f in payload["findings"] if f.get("waived")]
    )
    for finding in payload["findings"]:
        assert finding["rule"] in RULES


def test_list_rules(capsys):
    from repro.lint.__main__ import main

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# -- hook hygiene ------------------------------------------------------------


def test_hooks_only_live_inside_elaboration():
    assert signal_mod._signal_class is None
    assert cycle_mod._lint_observer is None
    plain = make_signal("outside", width=4)
    assert type(plain) is Signal
    with lint_elaboration() as netlist:
        traced = make_signal("inside", width=4)
        assert type(traced) is TracedSignal
        assert netlist.signals == [traced]
    assert signal_mod._signal_class is None
    assert cycle_mod._lint_observer is None
    assert type(make_signal("after", width=4)) is Signal


def test_hooks_restored_after_exception():
    with pytest.raises(RuntimeError):
        with lint_elaboration():
            raise RuntimeError("boom")
    assert signal_mod._signal_class is None
    assert cycle_mod._lint_observer is None


def test_elaborations_cannot_nest():
    from repro.errors import SimulationError

    with lint_elaboration():
        with pytest.raises(SimulationError):
            with lint_elaboration():
                pass
    assert signal_mod._signal_class is None


def test_traced_signal_semantics_match_plain():
    """The traced subclass must be a pure observer: drive/commit/lazy
    behaviour identical to Signal, reads attributed, suppression off."""
    with lint_elaboration() as netlist:
        sig = make_signal("t.s", width=8, reset=3)
        assert sig.value == 3  # external read (no process running)
        assert sig.drive(7) is True
        assert sig.drive(7) is False  # no-change compare intact
        sig.drive_next(9)
        assert sig.value == 7
        assert sig.commit() is True
        assert sig.value == 9
        sig.drive_next_lazy(9)  # equal + nothing pending: elided
        assert sig.commit() is False
    assert sig in netlist.external_reads
