"""Tests for repro.kernel.events."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError
from repro.kernel.events import Event, EventQueue


class TestEvent:
    def test_notify_invokes_subscribers_in_order(self):
        event = Event("e")
        seen = []
        event.subscribe(lambda: seen.append("a"))
        event.subscribe(lambda: seen.append("b"))
        event.notify()
        assert seen == ["a", "b"]

    def test_fire_count(self):
        event = Event()
        event.notify()
        event.notify()
        assert event.fire_count == 2

    def test_unsubscribe_stops_delivery(self):
        event = Event()
        seen = []
        action = lambda: seen.append(1)
        event.subscribe(action)
        event.unsubscribe(action)
        event.notify()
        assert seen == []

    def test_unsubscribe_unknown_raises(self):
        event = Event()
        with pytest.raises(ValueError):
            event.unsubscribe(lambda: None)

    def test_subscriber_added_during_notify_not_called_this_round(self):
        event = Event()
        seen = []

        def first():
            seen.append("first")
            event.subscribe(lambda: seen.append("late"))

        event.subscribe(first)
        event.notify()
        assert seen == ["first"]
        event.notify()
        assert "late" in seen


class TestEventQueue:
    def test_pop_returns_time_order(self):
        queue = EventQueue()
        queue.push(5, lambda: "late")
        queue.push(1, lambda: "early")
        time, _ = queue.pop()
        assert time == 1

    def test_fifo_among_equal_times(self):
        queue = EventQueue()
        order = []
        queue.push(3, lambda: order.append("first"))
        queue.push(3, lambda: order.append("second"))
        while queue:
            _, action = queue.pop()
            action()
        assert order == ["first", "second"]

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SchedulingError):
            queue.push(-1, lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(7, lambda: None)
        assert queue.peek_time() == 7

    def test_clear(self):
        queue = EventQueue()
        queue.push(1, lambda: None)
        queue.clear()
        assert not queue

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60))
    def test_pop_order_is_sorted_and_stable(self, times):
        queue = EventQueue()
        for index, time in enumerate(times):
            queue.push(time, lambda i=index: i)
        popped = []
        while queue:
            time, action = queue.pop()
            popped.append((time, action()))
        assert [t for t, _ in popped] == sorted(times)
        # Stability: among equal times, insertion index increases.
        for (t1, i1), (t2, i2) in zip(popped, popped[1:]):
            if t1 == t2:
                assert i1 < i2
