"""Method-based vs thread-based engine equivalence (paper §4).

The two engines implement identical bus semantics; these tests pin that
down: same cycle counts, same per-master transaction streams, same
final memory — across several workloads and seeds.  The speed benchmark
then shows the method engine is faster for *free*, i.e. purely from
engine overhead.
"""

import pytest

from repro.core import build_tlm_platform
from repro.core.platform import config_for_workload
from repro.errors import ConfigError
from repro.traffic import (
    bank_striped_workload,
    saturating_workload,
    single_master_workload,
    table1_pattern_a,
    table1_pattern_b,
    table1_pattern_c,
    write_heavy_workload,
)

from dataclasses import replace

WORKLOADS = [
    single_master_workload(40),
    table1_pattern_a(40),
    table1_pattern_b(40),
    table1_pattern_c(40),
    write_heavy_workload(40),
    bank_striped_workload(40),
    saturating_workload(15),
    table1_pattern_a(40, seed=999),
]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: f"{w.name}-{w.seed}")
def test_thread_engine_matches_method_engine(workload):
    method = build_tlm_platform(workload, engine="method")
    method_result = method.run()
    thread = build_tlm_platform(workload, engine="thread")
    thread_result = thread.run()

    assert thread_result.cycles == method_result.cycles
    assert thread_result.transactions == method_result.transactions
    assert (
        thread_result.per_master_transactions
        == method_result.per_master_transactions
    )
    assert thread_result.absorbed_writes == method_result.absorbed_writes
    assert thread_result.pipelined_grants == method_result.pipelined_grants
    assert method.memory.equal_contents(thread.memory)

    for m_agent, t_agent in zip(method.masters, thread.masters):
        m_stream = [
            (t.addr, t.kind.value, t.finished_at, tuple(t.data))
            for t in m_agent.completed
        ]
        t_stream = [
            (t.addr, t.kind.value, t.finished_at, tuple(t.data))
            for t in t_agent.completed
        ]
        assert m_stream == t_stream


def test_thread_engine_rejects_zero_lead():
    workload = table1_pattern_a(5)
    cfg = replace(config_for_workload(workload), pipeline_lead=0)
    with pytest.raises(ConfigError):
        build_tlm_platform(workload, config=cfg, engine="thread")


def test_thread_engine_without_pipelining():
    workload = table1_pattern_a(30)
    cfg = replace(config_for_workload(workload), request_pipelining=False)
    method = build_tlm_platform(workload, config=cfg, engine="method").run()
    thread = build_tlm_platform(workload, config=cfg, engine="thread").run()
    assert method.cycles == thread.cycles
