"""Event-driven RTL vs exhaustive reference sweep: VCD equality.

The quiescence/skip-ahead machinery must be invisible in the waveforms:
for every workload family the paper's experiments use — the Table-1
patterns, the MPEG-style bursty SoC, the multi-slave decode, replayed
traces and fault-injected runs — the fast engine's VCD dump is
byte-identical to the ``full_sweep=True`` reference, and both runs agree
on every observable counter.  ``full_sweep`` stays the ground truth; the
event-driven engine is only allowed to be cheaper.
"""

from dataclasses import replace

import pytest

from repro.system import build_platform, scenario
from repro.traffic.faults import FaultSpec


def _vcd_pair(spec):
    fast = build_platform(spec, "rtl", trace=True)
    fast_result = fast.run()
    ref = build_platform(spec, "rtl", trace=True, full_sweep=True)
    ref_result = ref.run()
    return fast, fast_result, ref, ref_result


def _assert_identical(fast, fast_result, ref, ref_result):
    # The engines must actually differ in machinery...
    assert fast.engine.quiescence_enabled
    assert not ref.engine.quiescence_enabled
    assert ref.engine.cycles_skipped == 0
    # ...and agree on everything observable, down to the waveform bytes.
    assert fast_result.cycles == ref_result.cycles
    assert fast_result.transactions == ref_result.transactions
    assert fast_result.bytes_transferred == ref_result.bytes_transferred
    assert fast_result.per_master_transactions == (
        ref_result.per_master_transactions
    )
    assert fast.memory.equal_contents(ref.memory)
    assert fast.tracer.getvalue() == ref.tracer.getvalue()


SCENARIO_CASES = [
    ("paper-pattern-a", {"transactions": 40}),
    ("paper-pattern-b", {"transactions": 40}),
    ("paper-pattern-c", {"transactions": 40}),
    ("mpeg-bursty", {"transactions": 40}),
    ("multi-slave-soc", {"transactions": 40}),
    ("trace-replay", {}),
    # Pin the NET-WAKE hwdata waivers (see LINT_WAIVERS on DdrcRtl and
    # StaticSlaveRtl): write bursts sample bus.hwdata mid-stream without
    # a wake_on entry, on the claim that the FSMs never idle between
    # accepted address phase and final beat.  Write-heavy traffic
    # through the DDRC and the scratchpad slave must stay VCD-identical
    # to the full sweep, or the waiver claim is wrong.
    ("write-heavy", {"transactions": 40}),
    ("scratchpad-offload", {"transactions": 40}),
]


@pytest.mark.parametrize(
    "name,kwargs", SCENARIO_CASES, ids=[c[0] for c in SCENARIO_CASES]
)
def test_scenario_vcd_identical(name, kwargs):
    spec = scenario(name, **kwargs)
    _assert_identical(*_vcd_pair(spec))


def test_fault_injected_vcd_identical():
    spec = scenario("paper-pattern-a", transactions=40)
    faulty = replace(
        spec,
        workload=replace(
            spec.workload,
            fault=FaultSpec(seed=5, error_rate=0.08, retry_rate=0.15),
        ),
    )
    fast, fast_result, ref, ref_result = _vcd_pair(faulty)
    _assert_identical(fast, fast_result, ref, ref_result)
    # The faults really fired — this case exercises RETRY/ERROR paths.
    assert fast_result.retry_responses + fast_result.error_responses > 0


def test_fast_engine_skips_on_sparse_traffic():
    # A think-heavy single master leaves most cycles globally idle; the
    # event-driven engine must skip them while staying VCD-identical.
    spec = scenario("single-master", transactions=15)
    fast, fast_result, ref, ref_result = _vcd_pair(spec)
    _assert_identical(fast, fast_result, ref, ref_result)
    assert fast.engine.cycles_skipped > 0
