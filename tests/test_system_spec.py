"""SystemSpec layer: validation, serialisation, pickling, sweep grids."""

import json
import pickle

import pytest

from repro.core import AhbPlusConfig, QosSetting
from repro.ddr.timing import DDR_TEST, DdrTiming
from repro.errors import ConfigError
from repro.system import (
    BusSpec,
    PlatformBuilder,
    SlaveSpec,
    SystemSpec,
    paper_topology,
    scenario,
    scenario_names,
    sweep,
)
from repro.traffic import table1_pattern_a


class TestConfigSerialisation:
    def test_default_round_trip_through_json(self):
        cfg = AhbPlusConfig()
        clone = AhbPlusConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert clone == cfg

    def test_full_round_trip_preserves_every_knob(self):
        cfg = AhbPlusConfig(
            num_masters=3,
            bus_width_bytes=8,
            write_buffer_enabled=False,
            write_buffer_depth=2,
            request_pipelining=False,
            pipeline_lead=5,
            bus_interface_enabled=False,
            tie_break="round_robin",
            disabled_filters=("hazard", "bank"),
            urgency_margin=16,
            starvation_limit=64,
            arbitration_cycles=2,
            qos={1: QosSetting(real_time=True, objective_cycles=77)},
            ddr_timing=DDR_TEST,
            refresh_enabled=False,
            memory_size=1 << 22,
        )
        clone = AhbPlusConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert clone == cfg
        assert clone.qos[1].objective_cycles == 77
        assert clone.ddr_timing == DDR_TEST

    def test_from_dict_revalidates(self):
        data = AhbPlusConfig().to_dict()
        data["tie_break"] = "coin-flip"
        with pytest.raises(ConfigError):
            AhbPlusConfig.from_dict(data)
        data = AhbPlusConfig().to_dict()
        data["disabled_filters"] = ["not-a-filter"]
        with pytest.raises(ConfigError):
            AhbPlusConfig.from_dict(data)

    def test_from_dict_rejects_unknown_fields(self):
        data = AhbPlusConfig().to_dict()
        data["warp_speed"] = True
        with pytest.raises(ConfigError, match="unknown"):
            AhbPlusConfig.from_dict(data)

    def test_ddr_timing_round_trip_and_validation(self):
        timing = DdrTiming(num_banks=8, t_rcd=4)
        clone = DdrTiming.from_dict(json.loads(json.dumps(timing.to_dict())))
        assert clone == timing
        bad = timing.to_dict()
        bad["num_banks"] = 3  # not a power of two
        with pytest.raises(ConfigError):
            DdrTiming.from_dict(bad)


class TestSlaveSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown kind"):
            SlaveSpec(name="x", kind="flash", base=0, size=64)

    def test_ddr_must_sit_at_zero(self):
        with pytest.raises(ConfigError, match="address zero"):
            SlaveSpec(name="ddr", kind="ddr", base=0x1000, size=1 << 20)

    def test_multi_slave_needs_a_ddr(self):
        with pytest.raises(ConfigError, match="need a DDR"):
            SystemSpec(
                name="x",
                workload=table1_pattern_a(10),
                slaves=(SlaveSpec(name="s", kind="sram", base=0, size=1 << 16),),
            )

    def test_at_most_one_ddr(self):
        with pytest.raises(ConfigError, match="at most one DDR"):
            SystemSpec(
                name="x",
                workload=table1_pattern_a(10),
                slaves=(
                    SlaveSpec(name="d0", kind="ddr", base=0, size=1 << 20),
                    SlaveSpec(name="d1", kind="ddr", base=0, size=1 << 20),
                ),
            )

    def test_overlapping_regions_fail_at_map_build(self):
        spec = SystemSpec(
            name="x",
            workload=table1_pattern_a(10),
            slaves=(
                SlaveSpec(name="ddr", kind="ddr", base=0, size=1 << 26),
                SlaveSpec(name="sram", kind="sram", base=1 << 20, size=1 << 16),
            ),
        )
        with pytest.raises(ConfigError, match="overlaps"):
            spec.address_map()


class TestSystemSpec:
    def test_paper_topology_defaults_to_single_ddr(self):
        spec = paper_topology(transactions=10)
        cfg = spec.config()
        slaves = spec.resolved_slaves(cfg)
        assert len(slaves) == 1 and slaves[0].kind == "ddr"
        assert slaves[0].size == cfg.memory_size
        amap = spec.address_map(cfg)
        assert amap.span() == cfg.memory_size
        assert amap.slave_for(0) == 0

    def test_with_config_overrides_and_revalidates(self):
        spec = paper_topology(transactions=10)
        deeper = spec.with_config(write_buffer_depth=16)
        assert deeper.config().write_buffer_depth == 16
        # original untouched (specs are frozen data)
        assert spec.config().write_buffer_depth == 4
        with pytest.raises(ConfigError):
            spec.with_config(bus_width_bytes=3)

    def test_spec_round_trip_through_json(self):
        spec = scenario("multi-slave-soc", transactions=20)
        clone = SystemSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_spec_is_picklable(self):
        # Specs must cross multiprocessing boundaries for sharded sweeps.
        spec = scenario("multi-slave-soc", transactions=20)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        # A pickled clone elaborates and runs like the original.
        result = PlatformBuilder(clone).build("tlm").run()
        assert result.transactions > 0

    def test_scenario_registry(self):
        names = scenario_names()
        assert "paper" in names and "multi-slave-soc" in names
        with pytest.raises(ConfigError, match="unknown scenario"):
            scenario("warp-bus")

    def test_bus_spec_round_trip(self):
        bus = BusSpec(config=AhbPlusConfig(num_masters=2))
        clone = BusSpec.from_dict(json.loads(json.dumps(bus.to_dict())))
        assert clone == bus
        assert BusSpec.from_dict({"config": None}) == BusSpec()


class TestSweep:
    def test_config_axis_produces_distinct_specs(self):
        spec = paper_topology(transactions=10)
        points = sweep(spec, axis="write_buffer_depth", values=(1, 2, 8))
        assert [p.spec.config().write_buffer_depth for p in points] == [1, 2, 8]
        assert [p.label for p in points] == [
            "write_buffer_depth=1",
            "write_buffer_depth=2",
            "write_buffer_depth=8",
        ]

    def test_engine_axis_keeps_spec_constant(self):
        spec = paper_topology(transactions=10)
        points = sweep(spec, axis="engine", values=("tlm", "plain", "rtl"))
        assert [p.engine for p in points] == ["tlm", "plain", "rtl"]
        assert all(p.spec is spec for p in points)

    def test_seed_axis_reseeds_workload(self):
        spec = paper_topology(transactions=10)
        points = sweep(spec, axis="seed", values=(3, 4))
        assert [p.spec.workload.seed for p in points] == [3, 4]
        assert points[0].spec.workload.masters == spec.workload.masters

    def test_unknown_axis_and_engine_rejected(self):
        spec = paper_topology(transactions=10)
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            sweep(spec, axis="clock_speed", values=(1,))
        with pytest.raises(ConfigError, match="unknown engine"):
            sweep(spec, axis="engine", values=("verilog",))

    def test_labels_must_match_values(self):
        spec = paper_topology(transactions=10)
        with pytest.raises(ConfigError, match="one-to-one"):
            sweep(spec, axis="write_buffer_depth", values=(1, 2), labels=("a",))

    def test_illegal_grid_value_fails_at_construction(self):
        spec = paper_topology(transactions=10)
        with pytest.raises(ConfigError):
            sweep(spec, axis="write_buffer_depth", values=(0,))
