"""Import-and-run guard: every documented example must run to completion.

The examples are the public face of the API; this suite (also exposed
as ``make smoke``) runs each script under ``examples/`` in a fresh
interpreter, so API churn can never silently break a documented entry
point.  Scripts with a ``--transactions`` knob run scaled down to keep
the tier-1 wall time low.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

#: Extra argv per script (keep the slow ones short in CI).
EXTRA_ARGS = {
    "accuracy_validation.py": ["--transactions", "25"],
}

SCRIPTS = sorted(path.name for path in EXAMPLES.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(SCRIPTS) >= 7  # keep the guard honest if examples move


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs_to_completion(script):
    env_path = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *EXTRA_ARGS.get(script, [])],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(REPO),
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, (
        f"{script} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"
