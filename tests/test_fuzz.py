"""The protocol fuzzer: scenario drawing, checking, shrinking, repros.

Two load-bearing guarantees:

* the fixed-seed budget ``make fuzz`` runs in tier-1 must be clean
  (``test_fixed_seed_budget_is_clean`` *is* that wiring), and
* a known-bad configuration (QoS checking armed against deliberately
  unschedulable deadlines) must produce a shrunken repro that
  round-trips through its JSON-lines file and replays to the same
  failure signature — the full find→shrink→archive→replay loop.
"""

import json
from dataclasses import replace

import pytest

from repro.errors import ConfigError, TrafficError
from repro.fuzz import (
    CHECKS,
    DEFAULT_CHECKS,
    Fuzzer,
    Repro,
    load_repro,
    replay_repro,
    save_repro,
    shrink_records,
)
from repro.fuzz.__main__ import main as fuzz_main
from repro.traffic.trace import TraceRecord


def _record(uid, addr=64, beats=1, **overrides):
    payload = dict(
        master=0,
        kind="write",
        addr=addr,
        beats=beats,
        size_bytes=4,
        wrapping=False,
        data=[7] * beats,
        issued_at=uid,
        granted_at=-1,
        started_at=-1,
        finished_at=-1,
        via_write_buffer=False,
        deadline=None,
        uid=uid,
        resp=0,
        fault_plan=(),
        retry_limit=4,
    )
    payload.update(overrides)
    return TraceRecord(**payload)


class TestFuzzerConfig:
    def test_constants(self):
        assert set(DEFAULT_CHECKS) < set(CHECKS)
        assert "qos" in CHECKS and "qos" not in DEFAULT_CHECKS

    def test_default_matrix_covers_both_rtl_kernels(self):
        from repro.fuzz import DEFAULT_ENGINES, ENGINES

        # The campaign must cross-check the event-driven RTL kernel
        # against tlm/plain *and* its own full-sweep reference.
        assert "rtl" in DEFAULT_ENGINES and "rtl-full" in DEFAULT_ENGINES
        assert Fuzzer().engines == DEFAULT_ENGINES
        assert set(DEFAULT_ENGINES) <= set(ENGINES)

    def test_rtl_full_pseudo_engine_runs(self):
        # A short campaign on the reference kernel alone: the pseudo
        # engine elaborates (full_sweep=True) and fuzzes clean.
        report = Fuzzer(
            engines=("tlm", "rtl-full"), transactions=(3, 5)
        ).run(range(3))
        assert report.clean, report.summary()

    def test_validation(self):
        with pytest.raises(ConfigError, match="engine"):
            Fuzzer(engines=())
        with pytest.raises(ConfigError, match="unknown engine"):
            Fuzzer(engines=("verilator",))
        with pytest.raises(ConfigError, match="unknown checks"):
            Fuzzer(checks=("vibes",))
        with pytest.raises(ConfigError, match="2 engines"):
            Fuzzer(engines=("tlm",), checks=("divergence",))
        with pytest.raises(ConfigError, match="masters"):
            Fuzzer(masters=(0, 2))
        with pytest.raises(ConfigError, match="transactions"):
            Fuzzer(transactions=(5, 2))
        with pytest.raises(ConfigError, match="max_cycles"):
            Fuzzer(max_cycles=0)

    def test_scenarios_are_deterministic_and_diverse(self):
        fuzzer = Fuzzer()
        assert fuzzer.scenario(3) == fuzzer.scenario(3)
        specs = [fuzzer.scenario(seed) for seed in range(12)]
        assert len({spec.workload.num_masters for spec in specs}) > 1
        assert any(spec.workload.fault is not None for spec in specs)
        assert any(spec.workload.fault is None for spec in specs)
        # Hostile shaping: some scenario draws wrapping-heavy traffic.
        assert any(
            master.pattern.wrap_fraction > 0
            for spec in specs
            for master in spec.workload.masters
        )


class TestFixedSeedBudget:
    def test_fixed_seed_budget_is_clean(self):
        """Tier-1's fuzz gate: the committed seed budget finds nothing.

        A failure here is a *finding*, not a flake — the scenario for a
        seed is deterministic.  Reproduce with
        ``python -m repro.fuzz --start <seed> --count 1``.
        """
        report = Fuzzer(transactions=(3, 8)).run(range(8))
        assert report.clean, report.summary()


class TestKnownBadConfig:
    @pytest.fixture(scope="class")
    def failure(self):
        # Arm the QoS checker against the fuzzer's deliberately
        # unschedulable deadlines: a guaranteed, deterministic finding.
        fuzzer = Fuzzer(
            engines=("tlm", "plain"),
            checks=("protocol", "ordering", "divergence", "qos"),
        )
        for seed in range(8):
            found = fuzzer.run_seed(seed)
            if found is not None:
                return found
        pytest.fail("qos-armed fuzzer found nothing in 8 seeds")

    def test_failure_is_shrunk_and_replayable(self, failure):
        assert failure.observation.kind == "violation"
        assert failure.records  # shrunk, not emptied
        assert len(failure.records) <= 4  # minimal, not the full trace
        fuzzer = Fuzzer(engines=failure.engines, checks=failure.checks)
        observed = fuzzer.observe_replay(
            failure.config,
            failure.num_masters,
            failure.records,
            seed=failure.seed,
        )
        assert observed is not None
        assert observed.signature == failure.observation.signature

    def test_repro_file_round_trip(self, failure, tmp_path):
        path = tmp_path / "known_bad.jsonl"
        count = save_repro(Repro.from_failure(failure), path)
        assert count == len(failure.records)
        repro = load_repro(path)
        assert repro.signature == failure.observation.signature
        assert repro.records == failure.records
        observed = replay_repro(repro)
        assert observed is not None
        assert observed.signature == repro.signature


class TestShrinker:
    def test_shrinks_to_single_culprit(self):
        records = [_record(uid) for uid in range(16)]
        records[11] = replace(records[11], fault_plan=(1,), resp=1)
        calls = []

        def still_fails(candidate):
            calls.append(len(candidate))
            return any(r.fault_plan for r in candidate)

        shrunk = shrink_records(records, still_fails)
        # The culprit's fault plan is itself simplified away only if
        # the failure survives; here it IS the failure, so it stays.
        assert len(shrunk) == 1
        assert shrunk[0].uid == 11
        assert shrunk[0].fault_plan == (1,)

    def test_simplifies_survivor_fields(self):
        burst = _record(0, beats=8, data=[1] * 8, deadline=500)
        oracle = lambda candidate: bool(candidate)  # noqa: E731
        [shrunk] = shrink_records([burst], oracle)
        # Anything still failing gets simpler: single beat, no deadline.
        assert shrunk.beats == 1
        assert shrunk.deadline is None

    def test_unreproducible_failure_returns_input(self):
        records = [_record(uid) for uid in range(4)]
        shrunk = shrink_records(records, lambda candidate: False)
        assert shrunk == tuple(records)

    def test_candidates_always_revalidate(self):
        # A wrapping burst must not be "simplified" into an illegal
        # shape: every accepted candidate passes record_from_payload.
        wrap = _record(0, addr=0, beats=8, wrapping=True, data=[2] * 8)
        [shrunk] = shrink_records([wrap], lambda c: bool(c))
        assert shrunk.beats in (1, 4, 8, 16) or not shrunk.wrapping


class TestReproFiles:
    def test_load_rejects_malformations(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(TrafficError, match="empty"):
            load_repro(path)
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(TrafficError, match="format marker"):
            load_repro(path)
        meta = {
            "format": "ahbplus-fuzz-repro-v1",
            "kind": "violation",
            "engine": "tlm",
        }
        path.write_text(json.dumps(meta) + "\n")
        with pytest.raises(TrafficError, match="metadata missing"):
            load_repro(path)

    def test_crash_without_capture_has_no_repro(self):
        from repro.fuzz.fuzzer import FuzzFailure, Observation

        failure = FuzzFailure(
            seed=1,
            observation=Observation("crash", "tlm", ("crash",), "boom"),
            records=(),
            config=Fuzzer().scenario(1).config(),
            num_masters=2,
            engines=("tlm",),
            checks=("protocol",),
        )
        with pytest.raises(TrafficError, match="no\\s+trace"):
            Repro.from_failure(failure)


class TestCli:
    def test_clean_budget_exits_zero(self, capsys):
        status = fuzz_main(
            ["--start", "0", "--count", "2", "--engines", "tlm,plain"]
        )
        assert status == 0
        assert "no failures" in capsys.readouterr().out

    def test_failing_budget_writes_repros(self, tmp_path, capsys):
        status = fuzz_main(
            [
                "--start",
                "0",
                "--count",
                "6",
                "--engines",
                "tlm,plain",
                "--checks",
                "protocol,ordering,divergence,qos",
                "--max-failures",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        assert status == 1
        written = list(tmp_path.glob("*.jsonl"))
        assert written
        repro = load_repro(written[0])
        assert repro.kind == "violation"
