"""Tests for the persistent speed-benchmark harness (bench_io)."""

import json
from pathlib import Path

import pytest

from repro.analysis.bench_io import (
    MODELS,
    compare_reports,
    load_report,
    make_report,
    render_block,
    run_speed_suite,
    same_host,
    speedups_vs,
    write_report,
)

REPO_ROOT = Path(__file__).parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_speed.json"


def _block(tlm=100.0, single=300.0, rtl=10.0, rev="abc1234"):
    return {
        "git_rev": rev,
        "models": {
            "tlm_method": {
                "kcycles_per_sec": tlm,
                "simulated_cycles": 1000,
                "wall_seconds": 0.01,
            },
            "tlm_single_master": {
                "kcycles_per_sec": single,
                "simulated_cycles": 1000,
                "wall_seconds": 0.003,
            },
            "rtl": {
                "kcycles_per_sec": rtl,
                "simulated_cycles": 1000,
                "wall_seconds": 0.1,
            },
        },
        "tlm_over_rtl_speedup": tlm / rtl,
    }


class TestReportShapes:
    def test_suite_produces_all_models(self):
        block = run_speed_suite(repeats_tlm=1, repeats_rtl=1)
        for model in MODELS:
            sample = block["models"][model]
            assert sample["kcycles_per_sec"] > 0
            assert sample["simulated_cycles"] > 0
        assert block["tlm_over_rtl_speedup"] > 1
        assert "Kcycles/s" in render_block(block)

    def test_make_report_round_trip(self, tmp_path):
        current = _block(tlm=200.0)
        seed = _block(tlm=100.0, rev="seed000")
        report = make_report(current, seed=seed)
        path = tmp_path / "BENCH_speed.json"
        write_report(path, report)
        loaded = load_report(path)
        assert loaded == report
        assert loaded["speedup_vs_seed"]["tlm_method"] == 2.0

    def test_make_report_without_seed_uses_current(self):
        current = _block()
        report = make_report(current)
        assert report["seed"] == current
        assert report["speedup_vs_seed"]["rtl"] == 1.0


class TestRegressionCheck:
    def test_within_threshold_passes(self):
        baseline = make_report(_block(tlm=100.0))
        fresh = _block(tlm=85.0)  # 15% down: inside the 20% tolerance
        assert compare_reports(fresh, baseline) == []

    def test_regression_detected(self):
        baseline = make_report(_block(tlm=100.0))
        fresh = _block(tlm=70.0)  # 30% down
        failures = compare_reports(fresh, baseline)
        assert len(failures) == 1
        assert "tlm_method" in failures[0]

    def test_speedups_vs(self):
        ratios = speedups_vs(_block(tlm=150.0, rtl=20.0), _block(tlm=100.0, rtl=10.0))
        assert ratios["tlm_method"] == 1.5
        assert ratios["rtl"] == 2.0

    def test_cross_host_baseline_is_not_graded(self):
        """Absolute Kcycles/s from another machine must not fail the gate."""
        baseline_block = _block(tlm=1000.0)
        baseline_block["host"] = "build-farm-a"
        baseline = make_report(baseline_block)
        fresh = _block(tlm=100.0)  # 10x slower host
        fresh["host"] = "laptop-b"
        assert not same_host(fresh, baseline)
        assert compare_reports(fresh, baseline) == []
        # Same (or unrecorded) host still grades strictly.
        fresh["host"] = "build-farm-a"
        assert same_host(fresh, baseline)
        assert compare_reports(fresh, baseline)


class TestCommittedBaseline:
    """The committed BENCH_speed.json is the PR's speed evidence."""

    def test_baseline_exists_and_parses(self):
        report = json.loads(BENCH_PATH.read_text())
        assert report["schema"] == 1
        for block_name in ("seed", "current"):
            models = report[block_name]["models"]
            for model in MODELS:
                assert models[model]["kcycles_per_sec"] > 0

    def test_recorded_speedup_meets_targets(self):
        """Before/after on the recording host: >=1.5x TLM, >=1.3x RTL."""
        report = json.loads(BENCH_PATH.read_text())
        ratios = report["speedup_vs_seed"]
        assert ratios["tlm_method"] >= 1.5
        assert ratios["rtl"] >= 1.3


class TestTrafficgenSuite:
    def test_shape_and_positive_rates(self):
        from repro.analysis.bench_io import run_trafficgen_suite

        block = run_trafficgen_suite(items=2000, repeats=1)
        assert block["items"] == 2000
        for mode in ("compat", "stream"):
            sample = block["modes"][mode]
            assert sample["items_per_sec"] > 0
            assert sample["wall_seconds"] > 0
        assert block["stream_over_compat"] > 0


class TestSweepSuite:
    def test_shape_and_determinism_gate(self):
        from repro.analysis.bench_io import run_sweep_suite

        block = run_sweep_suite(transactions=30)
        assert block["points"] == 8
        assert block["workers"] >= 1
        assert block["serial_wall_seconds"] > 0
        assert block["process_wall_seconds"] > 0
        assert block["process_over_serial"] > 0


class TestBatchSuite:
    def test_shape_and_lockstep_gate(self):
        from repro.analysis.bench_io import run_batch_suite
        from repro.exec.batch import HAVE_NUMPY

        block = run_batch_suite(transactions=40, seeds=6, repeats=1)
        assert block["points"] == 6
        assert block["transactions"] == 40
        assert block["available"] is HAVE_NUMPY
        if HAVE_NUMPY:
            assert block["serial_wall_seconds"] > 0
            assert block["batch_wall_seconds"] > 0
            assert block["batch_over_serial"] > 0
        else:
            assert "batch_over_serial" not in block


class TestServeSuite:
    def test_shape_and_hit_rate_gate(self):
        from repro.analysis.bench_io import run_serve_suite

        block = run_serve_suite(
            transactions=20, clients=2, submissions_per_client=2
        )
        assert block["clients"] == 2
        assert block["submissions_per_client"] == 2
        assert block["points"] >= 1
        assert block["cold_wall_seconds"] > 0
        assert block["burst_wall_seconds"] > 0
        assert block["submissions_per_sec"] > 0
        assert block["points_per_sec"] > 0
        # Two cold passes (lockstep primer + write-buffer grid), then an
        # all-warm burst: 4 of 6 submissions hit.
        assert block["cache_hit_rate"] == pytest.approx(4 / 6, abs=1e-3)
        assert block["max_queue_depth"] >= 1
        # The dispatch report must cover both execution paths: the
        # single-master primer lockstepped (when numpy is present) and
        # the multi-master grid fell back to per-point serial.
        from repro.exec.batch import HAVE_NUMPY

        dispatch = block["dispatch"]
        if HAVE_NUMPY:
            assert block["backend"] == "batch"
            assert dispatch.get("batch", 0) >= 1
            assert dispatch.get("serial-fallback", 0) >= 1
        else:
            assert set(dispatch) == {"serial"}
        assert len(block["burst_backends"]) == 2
        assert sum(sum(b.values()) for b in block["burst_backends"]) == sum(
            dispatch.values()
        )
        # Supervision metrics ride along, recorded rather than gated:
        # nothing sheds at this size, and the recovery drill replays the
        # four warm grid points from the store while re-running its two
        # cold ones.
        assert block["shed_rate"] == 0.0
        assert block["recovery_replayed"] == 4
        assert block["recovered_rerun"] == 2
        assert block["recovery_replay_hit_rate"] == pytest.approx(4 / 6)
        assert block["recovery_wall_seconds"] > 0


class TestModelFilter:
    def test_suite_measures_only_selected_models(self):
        block = run_speed_suite(
            repeats_tlm=1,
            repeats_rtl=1,
            include_trafficgen=False,
            include_sweep=False,
            models=["rtl"],
        )
        assert list(block["models"]) == ["rtl"]
        assert "tlm_over_rtl_speedup" not in block
        # Comparison helpers grade only the models a block carries.
        baseline = make_report(_block())
        fresh = {"models": {"rtl": dict(baseline["current"]["models"]["rtl"])}}
        assert compare_reports(fresh, baseline) == []

    def test_unknown_model_rejected(self):
        import pytest

        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_speed_suite(models=["warp-drive"])


class TestDeltaTableAndTrajectory:
    def test_delta_table_marks_regressions(self):
        from repro.analysis.bench_io import render_delta_table

        baseline = make_report(_block(tlm=100.0, rtl=10.0))
        fresh = _block(tlm=60.0, rtl=11.0)  # tlm 40% down, rtl 10% up
        table = render_delta_table(fresh, baseline)
        lines = {
            line.split()[0]: line for line in table.splitlines()[2:]
        }
        assert lines["tlm_method"].endswith("FAIL")
        assert lines["rtl"].endswith("ok")
        assert "-40.0%" in lines["tlm_method"]

    def test_delta_table_flags_cycle_drift_cross_host(self):
        from repro.analysis.bench_io import render_delta_table

        baseline_block = _block()
        baseline_block["host"] = "farm"
        fresh = _block()
        fresh["host"] = "laptop"
        fresh["models"]["rtl"]["simulated_cycles"] = 7
        table = render_delta_table(fresh, make_report(baseline_block))
        lines = {
            line.split()[0]: line for line in table.splitlines()[2:]
        }
        assert "DRIFT" in lines["rtl"] and lines["rtl"].endswith("FAIL")
        assert lines["tlm_method"].endswith("n/a")  # cross-host speed

    def test_trajectory_rows_and_history_collapse(self):
        from repro.analysis.bench_io import (
            append_history,
            render_trajectory,
        )

        seed = _block(tlm=100.0, rev="seed000")
        mid = _block(tlm=150.0, rev="mid1111")
        current = _block(tlm=200.0, rev="cur2222")
        history = append_history(None, mid, label="PR X")
        # Same-revision tail entries collapse instead of duplicating,
        # and the established milestone label survives the re-measure.
        remeasured = _block(tlm=160.0, rev="mid1111")
        history = append_history(history, remeasured, label="rev mid1111")
        assert len(history) == 1 and history[0]["label"] == "PR X"
        assert history[0]["models"]["tlm_method"] == 160.0
        report = make_report(current, seed=seed, history=history)
        table = render_trajectory(report)
        labels = [line.split()[0] for line in table.splitlines()[2:]]
        assert labels == ["seed", "PR", "current"]  # "PR X" splits
        assert "2.00x" in table.splitlines()[-1]

    def test_committed_baseline_has_history(self):
        report = json.loads(BENCH_PATH.read_text())
        assert report["history"], "speed trajectory missing"
        assert {e["label"] for e in report["history"]} >= {"PR 1", "PR 3"}


class TestCycleDeterminismGate:
    def test_cycle_drift_fails_even_cross_host(self):
        baseline_block = _block(tlm=1000.0)
        baseline_block["host"] = "build-farm-a"
        baseline = make_report(baseline_block)
        fresh = _block(tlm=100.0)
        fresh["host"] = "laptop-b"
        fresh["models"]["tlm_method"]["simulated_cycles"] = 999  # drift!
        failures = compare_reports(fresh, baseline)
        assert len(failures) == 1
        assert "determinism drift" in failures[0]


class TestCommittedNewEntries:
    """The committed baseline carries the PR's trafficgen/sweep/serve
    evidence."""

    def test_baseline_has_trafficgen_and_sweep(self):
        report = json.loads(BENCH_PATH.read_text())
        current = report["current"]
        assert current["trafficgen"]["modes"]["stream"]["items_per_sec"] > 0
        assert current["sweep"]["points"] >= 8
        assert current["sweep"]["process_over_serial"] > 0

    def test_baseline_has_serve_block(self):
        report = json.loads(BENCH_PATH.read_text())
        serve = report["current"]["serve"]
        assert serve["submissions_per_sec"] > 0
        assert serve["points_per_sec"] > 0
        assert 0 < serve["cache_hit_rate"] < 1
        assert serve["max_queue_depth"] >= 1


class TestJsonRoundTripWithNestedMetrics:
    def test_record_survives_json_with_nested_metrics(self):
        from repro.exec import RunRecord, SweepRunner
        from repro.analysis.accuracy import _collect_functional
        from repro.system import paper_topology, sweep
        from repro.traffic import single_master_workload

        grid = sweep(
            paper_topology(workload=single_master_workload(8)),
            axis="engine",
            values=("tlm",),
        )
        [record] = SweepRunner().run(grid, collect=_collect_functional)
        wire = json.loads(json.dumps(record.to_dict()))
        rebuilt = RunRecord.from_dict(wire)
        assert rebuilt == record
        hash(rebuilt)  # nested metrics must stay hashable


class TestCliGating:
    """main() must grade cycle drift and the sweep gate on every path."""

    def _fresh_args(self, baseline):
        return [
            "--baseline",
            str(baseline),
            "--repeats-tlm",
            "1",
            "--repeats-rtl",
            "1",
        ]

    def test_same_rev_rerecord_does_not_self_milestone(self, tmp_path):
        """--write-baseline twice at one revision replaces `current`
        without archiving it as a history milestone of itself."""
        from benchmarks.bench_regression import main

        path = tmp_path / "bench.json"
        args = self._fresh_args(path) + ["--write-baseline"]
        assert main(args) == 0
        first = load_report(path)
        assert main(args) == 0
        second = load_report(path)
        assert second.get("history") == first.get("history")
        assert second["current"]["git_rev"] == first["current"]["git_rev"]

    def test_cross_host_cycle_drift_fails_cli(self, tmp_path, capsys):
        from benchmarks.bench_regression import main
        from repro.analysis.bench_io import make_report, run_speed_suite

        block = run_speed_suite(
            repeats_tlm=1,
            repeats_rtl=1,
            include_trafficgen=False,
            include_sweep=False,
        )
        block["host"] = "some-other-host"
        block["models"]["tlm_method"]["simulated_cycles"] += 1  # drift
        path = tmp_path / "bench.json"
        write_report(path, make_report(block))
        assert main(self._fresh_args(path)) == 1
        assert "determinism drift" in capsys.readouterr().err
