"""Tests for the analysis layer: accuracy, speed, tables, experiments."""

import pytest

from repro.analysis import (
    MasterAccuracy,
    SpeedSample,
    compare_models,
    experiment_bank_interleaving,
    experiment_filters,
    experiment_qos,
    experiment_write_buffer,
    kernel_comparison,
    render_speed,
    render_table1,
    run_table1,
    speed_comparison,
)
from repro.traffic import (
    single_master_workload,
    table1_pattern_a,
    table1_workloads,
)


class TestAccuracy:
    def test_master_accuracy_math(self):
        row = MasterAccuracy(0, "m", rtl_cycles=1000, tlm_cycles=1030)
        assert row.difference == 30
        assert row.error_pct == pytest.approx(3.0)
        assert row.accuracy_pct == pytest.approx(97.0)

    def test_compare_models_functional_and_tight(self):
        result = compare_models(table1_pattern_a(40))
        assert result.functional_match
        assert result.total_error_pct < 15.0
        assert len(result.rows) == 4

    def test_run_table1_aggregates(self):
        result = run_table1([table1_pattern_a(30), single_master_workload(30)])
        assert len(result.suites) == 2
        assert result.all_functional
        assert 0 <= result.average_error_pct <= 100
        assert result.average_accuracy_pct == pytest.approx(
            100 - result.average_error_pct
        )

    def test_render_table1(self):
        result = run_table1([single_master_workload(20)])
        text = render_table1(result)
        assert "RTL cycles" in text and "average accuracy" in text


class TestSpeed:
    def test_speed_sample_math(self):
        sample = SpeedSample("x", simulated_cycles=5000, wall_seconds=0.5)
        assert sample.kcycles_per_sec == pytest.approx(10.0)

    def test_speed_comparison_shape(self):
        report = speed_comparison(
            multi_master=table1_pattern_a(25),
            single_master=single_master_workload(50),
            include_thread=True,
        )
        # The TLM must beat the pin-accurate model by a wide margin.
        assert report.speedup > 5
        assert report.tlm_single_master is not None
        text = render_speed(report)
        assert "speedup" in text

    def test_method_faster_than_thread(self):
        from repro.analysis import measure_tlm

        workload = table1_pattern_a(200)
        method = measure_tlm(workload, engine="method", repeats=5)
        thread = measure_tlm(workload, engine="thread", repeats=5)
        # Identical results; the thread engine pays generator resumes and
        # event traffic on top, so best-of-5 must not be faster.
        assert method.simulated_cycles == thread.simulated_cycles
        assert method.wall_seconds <= thread.wall_seconds * 1.05

    def test_kernel_comparison(self):
        native, event = kernel_comparison(single_master_workload(30), cycles=400)
        assert native.simulated_cycles == event.simulated_cycles == 400
        # Event-driven per-cycle scheduling can only add overhead.
        assert event.wall_seconds >= native.wall_seconds * 0.8


class TestExperiments:
    def test_write_buffer_ablation_shape(self):
        points = experiment_write_buffer(transactions=50, depths=(2, 4))
        off = points[0]
        assert off.label == "off" and off.absorbed == 0
        deepest = points[-1]
        assert deepest.absorbed > 0
        assert deepest.mean_write_latency < off.mean_write_latency

    def test_bank_interleaving_shape(self):
        on, off = experiment_bank_interleaving(transactions=60)
        assert on.label == "bi-on" and off.label == "bi-off"
        assert on.prepared_banks > 0 and off.prepared_banks == 0
        assert on.cycles < off.cycles
        assert on.row_hit_rate > off.row_hit_rate

    def test_qos_shape(self):
        plain, ahbp = experiment_qos(transactions=40)
        assert plain.label == "plain-ahb" and ahbp.label == "ahb+"
        assert plain.miss_rate > ahbp.miss_rate
        assert ahbp.miss_rate == 0.0
        assert ahbp.worst_latency < plain.worst_latency

    def test_filter_ablation_covers_all_filters(self):
        points = experiment_filters(transactions=40)
        assert [p.disabled for p in points] == [
            "none",
            "request",
            "hazard",
            "urgency",
            "real-time",
            "pressure",
            "bank",
            "urgency+real-time",
        ]
        baseline = points[0]
        assert all(p.cycles > 0 for p in points)
        assert baseline.rt_misses == 0
        # Removing both QoS filters must not *improve* deadline behaviour.
        qos_off = next(p for p in points if p.disabled == "urgency+real-time")
        assert qos_off.rt_misses >= baseline.rt_misses
