"""Sequential quiescence and cycle skip-ahead correctness.

Three layers of evidence that the RTL fast-forward machinery changes
*cost*, never *behaviour*:

* a counting spy proves a drained master's ``update()`` really stops
  being called while the reference sweep keeps paying it every cycle —
  with bit-identical results;
* think-heavy traffic makes the engine skip whole cycle ranges, and
  cycle hooks still observe every cycle number exactly once; and
* kernel-level unit tests pin the :class:`~repro.kernel.cycle.SeqHandle`
  contract (idle/wake/timed wake, full-sweep opt-out, deadlock errors).
"""

from collections import Counter
from dataclasses import replace

import pytest

from repro.errors import SimulationError
from repro.kernel.cycle import CycleEngine, NULL_SEQ_HANDLE
from repro.kernel.signal import Signal
from repro.rtl import build_rtl_platform
from repro.rtl.master import MasterRtl
from repro.traffic.patterns import CPU, DMA
from repro.traffic.workloads import MasterSpec, Workload


def _uneven_workload(short: int = 3, long: int = 40) -> Workload:
    """Master 0 drains almost immediately; master 1 keeps the bus busy."""
    specs = (
        MasterSpec(
            "early", replace(CPU, base_addr=0, addr_span=1 << 20), short
        ),
        MasterSpec(
            "busy", replace(DMA, base_addr=1 << 20, addr_span=1 << 20), long
        ),
    )
    return Workload("uneven", specs, seed=31)


def _think_heavy_workload(transactions: int = 10) -> Workload:
    """Long uniform think gaps: most cycles are globally idle."""
    pat = replace(
        CPU, think_range=(80, 120), base_addr=0, addr_span=1 << 20
    )
    return Workload(
        "think_heavy", (MasterSpec("sleepy", pat, transactions),), seed=37
    )


class TestQuiescenceSpy:
    def _count_updates(self, monkeypatch, full_sweep):
        calls = Counter()
        orig = MasterRtl.update

        def counting(self):
            calls[self.index] += 1
            orig(self)

        monkeypatch.setattr(MasterRtl, "update", counting)
        platform = build_rtl_platform(
            _uneven_workload(), full_sweep=full_sweep
        )
        result = platform.run()
        return dict(calls), platform, result

    def test_drained_master_updates_are_skipped(self, monkeypatch):
        fast_calls, fast, fast_result = self._count_updates(
            monkeypatch, full_sweep=False
        )
        ref_calls, ref, ref_result = self._count_updates(
            monkeypatch, full_sweep=True
        )
        # Reference sweep: every master pays one update per cycle.
        assert ref_calls[0] == ref_result.cycles
        assert ref_calls[1] == ref_result.cycles
        # Fast engine: the early-drained master 0 sleeps for almost the
        # whole run, and even the busy master skips its wait cycles.
        assert fast_calls[0] < ref_calls[0] // 2
        assert fast_calls[1] < ref_calls[1]
        # ...while observable behaviour is bit-identical.
        assert fast_result.cycles == ref_result.cycles
        assert fast_result.transactions == ref_result.transactions
        assert fast_result.filter_stats == ref_result.filter_stats
        assert fast.memory.equal_contents(ref.memory)

    def test_full_sweep_never_idles_handles(self, monkeypatch):
        _calls, platform, _result = self._count_updates(
            monkeypatch, full_sweep=True
        )
        assert not platform.engine.quiescence_enabled
        assert platform.engine.cycles_skipped == 0


class TestSkipAhead:
    def test_think_gaps_are_skipped_with_identical_results(self):
        workload = _think_heavy_workload()
        fast = build_rtl_platform(workload)
        reference = build_rtl_platform(workload, full_sweep=True)
        fast_result = fast.run()
        ref_result = reference.run()
        assert fast_result.cycles == ref_result.cycles
        assert fast.memory.equal_contents(reference.memory)
        # The gaps dominate this workload: a large share of all cycles
        # must have been advanced analytically.
        assert fast.engine.cycles_skipped > fast_result.cycles // 3
        assert reference.engine.cycles_skipped == 0

    def test_cycle_hooks_observe_every_skipped_cycle(self):
        platform = build_rtl_platform(_think_heavy_workload(5))
        seen = []
        platform.engine.add_cycle_hook(seen.append)
        result = platform.run()
        assert platform.engine.cycles_skipped > 0
        assert seen == list(range(1, result.cycles + 1))


class TestSeqHandleKernel:
    def _engine_with_counter(self):
        engine = CycleEngine()
        count = Signal("count", width=16)
        engine.add_signal(count)
        ticks = []

        def tick():
            ticks.append(engine.cycle)
            count.drive_next(count.value + 1)

        handle = engine.add_sequential(tick)
        return engine, handle, ticks

    def test_idle_until_self_wakes_at_the_right_cycle(self):
        engine, handle, ticks = self._engine_with_counter()
        engine.step()  # runs at cycle 0
        handle.idle(until=3)
        engine.run(5)
        # Skipped cycles 1-2, woke at 3, then ran 4 and 5... but the
        # process never re-idles, so it runs every later cycle.
        assert ticks == [0, 3, 4, 5]
        assert engine.cycle == 6
        assert engine.cycles_skipped == 2

    def test_wake_on_signal_rearms_after_the_commit_edge(self):
        engine = CycleEngine()
        trigger = Signal("trigger")
        engine.add_signal(trigger)
        ran = []
        handle = engine.add_sequential(
            lambda: ran.append(engine.cycle), wake_on=(trigger,)
        )
        engine.add_sequential(
            lambda: trigger.drive_next(1) if engine.cycle == 2 else None
        )
        engine.step()
        handle.idle()
        engine.run(4)
        # trigger commits at the end of cycle 2 -> the wake_on watcher
        # re-arms the handle for cycle 3's sequential phase.
        assert ran == [0, 3, 4]

    def test_indefinite_idle_skips_to_run_end(self):
        engine, handle, ticks = self._engine_with_counter()
        engine.step()
        handle.idle()
        engine.run(10)
        assert ticks == [0]
        assert engine.cycle == 11
        assert engine.cycles_skipped == 10

    def test_run_until_deadlock_still_raises(self):
        engine, handle, _ticks = self._engine_with_counter()
        engine.step()
        handle.idle()
        with pytest.raises(SimulationError):
            engine.run_until(lambda: False, max_cycles=50)

    def test_quiescence_disabled_ignores_idle_flags(self):
        engine = CycleEngine(sensitivity=False)
        ran = []
        handle = engine.add_sequential(lambda: ran.append(engine.cycle))
        handle.idle()
        engine.run(3)
        assert ran == [0, 1, 2]
        assert engine.cycles_skipped == 0

    def test_null_handle_is_inert(self):
        NULL_SEQ_HANDLE.idle()
        NULL_SEQ_HANDLE.idle(until=5)
        NULL_SEQ_HANDLE.wake()


class TestMemoryBulkBeats:
    def test_write_beats_matches_per_beat_writes(self):
        from repro.ddr.memory import MemoryModel

        bulk, single = MemoryModel("bulk"), MemoryModel("single")
        addrs = [0x100, 0x104, 0x108, 0x10C]
        values = [1, 2, 3, 0xFFFF_FFFF]
        bulk.write_beats(addrs, 4, values)
        for addr, value in zip(addrs, values):
            single.write(addr, 4, value)
        assert bulk.equal_contents(single)
        assert bulk.write_ops == single.write_ops
        assert bulk.read_beats(addrs, 4) == [
            single.read(addr, 4) for addr in addrs
        ]

    def test_bulk_beats_spill_to_byte_store_like_write(self):
        from repro.ddr.memory import MemoryModel

        bulk, single = MemoryModel("bulk"), MemoryModel("single")
        addrs = [0x10, 0x11, 0x12]
        values = [0xAA, 0xBB, 0xCC]
        bulk.write_beats(addrs, 1, values)
        for addr, value in zip(addrs, values):
            single.write(addr, 1, value)
        assert bulk.equal_contents(single)
        # Word reads over byte residue merge identically.
        assert bulk.read_beats([0x10], 4) == [single.read(0x10, 4)]
