"""Canonical content keys: the hashes the serving cache is built on.

Satellite requirement: ``point_key`` / ``RunRecord.content_key`` must
be *stable* — same key across dict key ordering, ``to_dict`` → JSON →
``from_dict`` round-trips, and serial- vs process-backend execution —
because a key that wobbles would turn every cache lookup into a miss
(or worse, a collision).
"""

import json
from dataclasses import replace

import pytest

import repro.core  # noqa: F401  (anchor package import order)
from repro.canonical import canonical_json, stable_hash
from repro.errors import ConfigError
from repro.exec import RunRecord, SweepRunner, point_key
from repro.system import SystemSpec, paper_topology, sweep
from repro.traffic import Workload, single_master_workload, table1_pattern_b


def _scrambled(value):
    """The same JSON document with every dict's insertion order reversed."""
    if isinstance(value, dict):
        return {key: _scrambled(value[key]) for key in reversed(list(value))}
    if isinstance(value, list):
        return [_scrambled(item) for item in value]
    return value


class TestCanonicalJson:
    def test_sorts_keys_recursively(self):
        a = {"b": {"y": 1, "x": 2}, "a": 3}
        b = {"a": 3, "b": {"x": 2, "y": 1}}
        assert canonical_json(a) == canonical_json(b)

    def test_tuples_and_lists_serialise_identically(self):
        assert canonical_json((1, (2, 3))) == canonical_json([1, [2, 3]])

    def test_schema_separates_key_spaces(self):
        payload = {"a": 1}
        assert stable_hash(payload, "kind-1") != stable_hash(payload, "kind-2")

    def test_non_json_values_rejected(self):
        with pytest.raises(ConfigError):
            canonical_json({"x": object()})
        with pytest.raises(ConfigError):
            canonical_json({1: "non-string key"})


class TestPointKeyStability:
    def test_stable_across_dict_ordering(self):
        spec = paper_topology(30)
        reordered = SystemSpec.from_dict(_scrambled(spec.to_dict()))
        assert point_key(spec) == point_key(reordered)

    def test_stable_across_json_round_trip(self):
        spec = paper_topology(30, workload=table1_pattern_b(30))
        wire = json.loads(json.dumps(spec.to_dict()))
        assert point_key(spec) == point_key(SystemSpec.from_dict(wire))

    def test_workload_and_seed_overrides(self):
        spec = paper_topology(30)
        other = single_master_workload(30)
        assert point_key(spec, workload=other) == point_key(
            spec.with_workload(other)
        )
        assert point_key(spec, seed=99) == point_key(spec.with_seed(99))
        assert point_key(spec, seed=99) != point_key(spec)

    def test_engine_and_ceiling_participate(self):
        spec = paper_topology(30)
        base = point_key(spec)
        assert point_key(spec, engine="rtl") != base
        assert point_key(spec, max_cycles=500) != base
        assert point_key(spec, max_cycles=500) != point_key(
            spec, max_cycles=501
        )

    def test_invalid_arguments(self):
        spec = paper_topology(30)
        with pytest.raises(ConfigError):
            point_key(spec, engine="warp")
        with pytest.raises(ConfigError):
            point_key(spec, max_cycles=0)

    def test_spec_and_workload_content_keys(self):
        spec = paper_topology(30)
        reordered = SystemSpec.from_dict(_scrambled(spec.to_dict()))
        assert spec.content_key() == reordered.content_key()
        workload = spec.workload
        rebuilt = Workload.from_dict(
            json.loads(json.dumps(_scrambled(workload.to_dict())))
        )
        assert workload.content_key() == rebuilt.content_key()
        assert workload.content_key() != workload.with_seed(2).content_key()


class TestRecordContentKey:
    def _record(self):
        grid = sweep(
            paper_topology(workload=single_master_workload(10)),
            axis="engine",
            values=("tlm",),
        )
        [record] = SweepRunner().run(grid)
        return record

    def test_ignores_wall_time(self):
        record = self._record()
        slower = replace(record, wall_seconds=record.wall_seconds + 5.0)
        assert slower == record
        assert slower.content_key() == record.content_key()

    def test_counters_participate(self):
        record = self._record()
        drifted = replace(record, cycles=record.cycles + 1)
        assert drifted.content_key() != record.content_key()

    def test_stable_across_json_round_trip(self):
        record = self._record()
        rebuilt = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt.content_key() == record.content_key()

    def test_stable_across_backends(self):
        """The satellite's serial-vs-process clause, stated on keys."""
        grid = sweep(
            paper_topology(workload=single_master_workload(15)),
            axis="write_buffer_depth",
            values=(2, 8),
        )
        serial = SweepRunner(backend="serial").run(grid)
        process = SweepRunner(backend="process").run(grid)
        assert [r.content_key() for r in serial] == [
            r.content_key() for r in process
        ]
