"""Tests for DDR timing parameters and command/address decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.ddr.commands import (
    COMMAND_PRIORITY,
    BankAddress,
    DdrCommand,
    bank_span,
    decode_address,
    encode_address,
    same_row,
)
from repro.ddr.timing import DDR_266, DDR_TEST, DdrTiming, preset
from repro.errors import ConfigError, MemoryError_


class TestTiming:
    def test_defaults_valid(self):
        timing = DdrTiming()
        assert timing.bank_bits == 2
        assert timing.words_per_row == 1024

    def test_presets(self):
        assert preset("ddr266") is DDR_266
        with pytest.raises(ConfigError):
            preset("ddr9000")

    def test_non_power_of_two_banks_rejected(self):
        with pytest.raises(ConfigError):
            DdrTiming(num_banks=3)

    def test_zero_timing_rejected(self):
        with pytest.raises(ConfigError):
            DdrTiming(t_rcd=0)

    def test_row_miss_penalty(self):
        assert DDR_266.row_miss_penalty() == DDR_266.t_rp + DDR_266.t_rcd

    def test_total_words(self):
        assert DDR_TEST.total_words == 1 << (6 + 2 + 4)


class TestAddressDecode:
    def test_layout_row_bank_col(self):
        timing = DDR_TEST  # col_bits=4, 2 bank bits
        baddr = decode_address(0, timing)
        assert baddr == BankAddress(bank=0, row=0, col=0)
        # One full row of one bank later -> next bank.
        one_bank = timing.words_per_row * 4  # bytes
        assert decode_address(one_bank, timing).bank == 1

    def test_beyond_capacity_rejected(self):
        with pytest.raises(MemoryError_):
            decode_address(DDR_TEST.total_words * 4, DDR_TEST)

    def test_negative_rejected(self):
        with pytest.raises(MemoryError_):
            decode_address(-4, DDR_TEST)

    @given(st.integers(min_value=0, max_value=DDR_TEST.total_words - 1))
    def test_roundtrip(self, word):
        addr = word * 4
        baddr = decode_address(addr, DDR_TEST)
        assert encode_address(baddr, DDR_TEST) == addr

    def test_same_row(self):
        a = BankAddress(1, 5, 0)
        assert same_row(a, BankAddress(1, 5, 9))
        assert not same_row(a, BankAddress(2, 5, 0))

    def test_bank_span(self):
        timing = DDR_TEST
        row_bytes = timing.words_per_row * 4
        banks = bank_span(0, row_bytes * 2, timing)
        assert banks == (0, 1)


class TestCommandPriority:
    def test_column_beats_row_beats_precharge(self):
        assert (
            COMMAND_PRIORITY[DdrCommand.READ]
            < COMMAND_PRIORITY[DdrCommand.ACTIVATE]
            < COMMAND_PRIORITY[DdrCommand.PRECHARGE]
        )
