"""Determinism regression: the TLM must replay a committed golden trace.

The hot-path work (single-candidate arbitration fast path, cached
arbitration context, bucketed event queue) must be *observably
equivalence-preserving*: with a fixed seed the engine has to produce the
exact grant sequence, per-filter narrowing statistics and cycle count it
produced before the optimisations.  The golden trace in
``tests/data/golden_trace_pattern_a.json`` was captured from the seed
implementation; any silent reordering of arbitration fails here.
"""

import json
from pathlib import Path

from repro.core import build_tlm_platform
from repro.traffic import table1_pattern_a

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace_pattern_a.json"


def _run_traced():
    golden = json.loads(GOLDEN_PATH.read_text())
    workload = table1_pattern_a(golden["transactions_per_master"])
    assert workload.seed == golden["seed"]
    platform = build_tlm_platform(workload, engine="method")
    trace = []

    def observer(txn, grant, start, finish):
        trace.append(
            [
                txn.master,
                "W" if txn.is_write else "R",
                txn.addr,
                txn.beats,
                int(txn.via_write_buffer),
                grant,
                start,
                finish,
            ]
        )

    platform.bus.add_observer(observer)
    result = platform.run()
    return golden, trace, result


class TestGoldenTrace:
    def test_grant_sequence_matches_golden(self):
        golden, trace, _result = _run_traced()
        assert len(trace) == len(golden["grants"])
        for index, (got, want) in enumerate(zip(trace, golden["grants"])):
            assert got == want, f"grant #{index} diverged: {got} != {want}"

    def test_filter_stats_and_counters_match_golden(self):
        golden, _trace, result = _run_traced()
        assert result.filter_stats == golden["filter_stats"]
        assert result.cycles == golden["cycles"]
        assert result.pipelined_grants == golden["pipelined_grants"]
        assert result.absorbed_writes == golden["absorbed_writes"]
        assert result.drained_writes == golden["drained_writes"]

    def test_back_to_back_runs_identical(self):
        """Two fresh platforms under one seed replay identically."""
        _golden, first, _res = _run_traced()
        _golden, second, _res = _run_traced()
        assert first == second
