"""Equivalence of the fast-forward cycle engine vs the full sweep.

The fast engine skips combinational processes whose inputs did not
change, skips idle-declared sequential processes, skips *whole cycles*
when everything is idle, and streams DDRC data beats with batched
memory traffic.  All of that must be invisible: with ``full_sweep=True``
the platform runs the reference per-cycle, per-beat model, and both
modes must produce *cycle-identical* VCD traces (every signal, every
cycle), identical drain cycle counts and identical result records.

The workload list deliberately stresses the DDRC streaming fast path:
wrapping bursts (non-monotonic beat addresses), sub-word beats (byte
store instead of the word-dict fast path) and row-boundary-crossing
bursts (BI-split multi-segment accesses).
"""

from dataclasses import replace

import pytest

from repro.rtl import build_rtl_platform
from repro.system.platform import build_platform
from repro.system.scenarios import scenario
from repro.traffic import (
    single_master_workload,
    table1_pattern_a,
    table1_pattern_c,
    write_heavy_workload,
)
from repro.core.platform import config_for_workload
from repro.ddr.timing import DdrTiming
from repro.traffic.patterns import CPU, DMA
from repro.traffic.workloads import MasterSpec, Workload


def _wrapping_workload(transactions: int) -> Workload:
    """Every eligible burst is a WRAPx cache-line fill."""
    pat = replace(
        DMA,
        wrap_fraction=1.0,
        burst_mix=((4, 0.3), (8, 0.4), (16, 0.3)),
        read_fraction=0.5,
    )
    specs = tuple(
        MasterSpec(
            f"wrap{i}",
            replace(pat, base_addr=i << 20, addr_span=1 << 20),
            transactions,
        )
        for i in range(2)
    )
    return Workload("wrap_burst", specs, seed=17)


def _subword_workload(transactions: int) -> Workload:
    """Byte-sized beats: the memory model's byte-store path."""
    pat = replace(
        CPU,
        size_bytes=1,
        burst_mix=((4, 0.5), (8, 0.5)),
        read_fraction=0.5,
    )
    specs = tuple(
        MasterSpec(
            f"byte{i}",
            replace(pat, base_addr=i << 20, addr_span=1 << 16),
            transactions,
        )
        for i in range(2)
    )
    return Workload("subword", specs, seed=23)


def _row_split_workload(transactions: int):
    """Bursts that straddle row/bank boundaries → BI-split segments.

    AHB's 1 KB rule clamps incrementing bursts, so with the default
    4 KiB rows a burst can never leave its row; a narrow-column DDR
    geometry (16-word columns) makes every offset 16-beat burst cross a
    bank boundary mid-burst, exercising multi-segment streaming.
    """
    pat = replace(
        DMA,
        sequential_fraction=1.0,
        burst_mix=((16, 1.0),),
        base_addr=32,
        addr_span=1 << 16,
        think_range=(0, 2),
        read_fraction=0.5,
    )
    workload = Workload(
        "row_split", (MasterSpec("splitter", pat, transactions),), seed=29
    )
    config = replace(
        config_for_workload(workload),
        ddr_timing=DdrTiming(row_bits=8, col_bits=4),
    )
    return workload, config


WORKLOADS = [
    pytest.param(lambda: (single_master_workload(25), None), id="single_master"),
    pytest.param(lambda: (table1_pattern_a(25), None), id="pattern_a"),
    pytest.param(lambda: (table1_pattern_c(20), None), id="pattern_c_rt"),
    pytest.param(lambda: (write_heavy_workload(20), None), id="write_heavy"),
    pytest.param(lambda: (_wrapping_workload(20), None), id="wrapping"),
    pytest.param(lambda: (_subword_workload(20), None), id="subword"),
    pytest.param(lambda: _row_split_workload(20), id="row_split"),
]


@pytest.mark.parametrize("make_workload", WORKLOADS)
def test_sensitivity_engine_vcd_identical(make_workload):
    workload, config = make_workload()
    fast = build_rtl_platform(workload, config=config, trace=True)
    reference = build_rtl_platform(
        workload, config=config, trace=True, full_sweep=True
    )
    assert fast.engine.sensitivity_enabled
    assert not reference.engine.sensitivity_enabled

    fast_result = fast.run()
    ref_result = reference.run()

    assert fast_result.cycles == ref_result.cycles
    assert (
        fast.tracer.getvalue() == reference.tracer.getvalue()
    ), "VCD traces diverged between sensitivity and full-sweep engines"
    assert fast.tracer.change_count == reference.tracer.change_count
    assert fast_result.transactions == ref_result.transactions
    assert fast_result.filter_stats == ref_result.filter_stats
    assert fast.memory.equal_contents(reference.memory)


@pytest.mark.parametrize("make_workload", WORKLOADS[:2])
def test_sensitivity_engine_does_less_work(make_workload):
    """The point of the fast-forward machinery: fewer evaluations.

    The fast engine elides settle passes with nothing dirty and skips
    fully idle cycle ranges outright, so its evaluate-pass count drops
    strictly below the reference sweep's (which pays at least two per
    cycle) — while both drain at the same cycle.
    """
    workload, config = make_workload()
    fast = build_rtl_platform(workload, config=config)
    reference = build_rtl_platform(workload, config=config, full_sweep=True)
    fast.run()
    reference.run()
    assert reference.engine.cycles_skipped == 0
    assert reference.engine.evaluate_passes >= 2 * reference.engine.cycle
    assert fast.engine.evaluate_passes < reference.engine.evaluate_passes
    assert fast.engine.cycle == reference.engine.cycle


def test_streaming_exercises_the_hard_burst_shapes():
    """The streaming-equality workloads really hit their target paths."""
    wrap = build_rtl_platform(_wrapping_workload(15))
    wrap.run()
    assert any(
        txn.wrapping for agent in wrap.agents for txn in agent.completed
    )
    sub = build_rtl_platform(_subword_workload(15))
    sub.run()
    assert any(
        txn.size_bytes == 1 for agent in sub.agents for txn in agent.completed
    )
    split_workload, split_config = _row_split_workload(15)
    split = build_rtl_platform(split_workload, config=split_config)
    split.run()
    assert split.ddrc.split_bursts > 0


SCENARIOS = [
    pytest.param("mpeg-bursty", {"transactions": 12}, id="mpeg_bursty"),
    pytest.param("multi-slave-soc", {"transactions": 12}, id="multi_slave_soc"),
]


@pytest.mark.parametrize("name,kwargs", SCENARIOS)
def test_fast_forward_scenarios_bit_identical(name, kwargs):
    """Skip-ahead + quiescence + streaming vs the reference sweep.

    The acceptance scenarios: a think-heavy bursty workload (long
    inter-frame gaps the engine should skip over analytically) and the
    multi-slave SoC (response mux, static slaves with their own
    quiescence).  Both modes must agree signal-for-signal and the fast
    engine must actually have skipped cycles.
    """
    spec = scenario(name, **kwargs)
    fast = build_platform(spec, "rtl", trace=True)
    reference = build_platform(spec, "rtl", trace=True, full_sweep=True)
    fast_result = fast.run()
    ref_result = reference.run()
    assert fast_result.cycles == ref_result.cycles
    assert fast.tracer.getvalue() == reference.tracer.getvalue()
    assert fast_result.transactions == ref_result.transactions
    assert fast_result.filter_stats == ref_result.filter_stats
    assert fast.memory.equal_contents(reference.memory)
    assert fast.engine.cycles_skipped > 0, "skip-ahead never engaged"
    assert reference.engine.cycles_skipped == 0
