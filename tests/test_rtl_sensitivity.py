"""Equivalence of the sensitivity-driven cycle engine vs the full sweep.

The sensitivity-aware :class:`~repro.kernel.cycle.CycleEngine` skips
combinational processes whose inputs did not change.  That optimisation
must be invisible: with ``full_sweep=True`` the platform runs the
reference sweep-everything evaluate phase, and both modes must produce
*cycle-identical* VCD traces (every signal, every cycle), identical
drain cycle counts and identical result records.
"""

import pytest

from repro.rtl import build_rtl_platform
from repro.traffic import (
    single_master_workload,
    table1_pattern_a,
    table1_pattern_c,
    write_heavy_workload,
)

WORKLOADS = [
    pytest.param(lambda: single_master_workload(25), id="single_master"),
    pytest.param(lambda: table1_pattern_a(25), id="pattern_a"),
    pytest.param(lambda: table1_pattern_c(20), id="pattern_c_rt"),
    pytest.param(lambda: write_heavy_workload(20), id="write_heavy"),
]


@pytest.mark.parametrize("make_workload", WORKLOADS)
def test_sensitivity_engine_vcd_identical(make_workload):
    workload = make_workload()
    fast = build_rtl_platform(workload, trace=True)
    reference = build_rtl_platform(workload, trace=True, full_sweep=True)
    assert fast.engine.sensitivity_enabled
    assert not reference.engine.sensitivity_enabled

    fast_result = fast.run()
    ref_result = reference.run()

    assert fast_result.cycles == ref_result.cycles
    assert (
        fast.tracer.getvalue() == reference.tracer.getvalue()
    ), "VCD traces diverged between sensitivity and full-sweep engines"
    assert fast.tracer.change_count == reference.tracer.change_count
    assert fast_result.transactions == ref_result.transactions
    assert fast_result.filter_stats == ref_result.filter_stats
    assert fast.memory.equal_contents(reference.memory)


@pytest.mark.parametrize("make_workload", WORKLOADS[:2])
def test_sensitivity_engine_does_less_work(make_workload):
    """The point of sensitivity lists: fewer process evaluations.

    Evaluate-pass *counts* are identical by construction (the settle
    loop converges on the same passes); what shrinks is the number of
    process invocations inside those passes, which this asserts via the
    engines' identical pass counts plus the wall-clock-free proxy that
    both drain at the same cycle.
    """
    workload = make_workload()
    fast = build_rtl_platform(workload)
    reference = build_rtl_platform(workload, full_sweep=True)
    fast.run()
    reference.run()
    assert fast.engine.evaluate_passes == reference.engine.evaluate_passes
    assert fast.engine.cycle == reference.engine.cycle
