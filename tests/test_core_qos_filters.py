"""Tests for the QoS register file and the seven arbitration filters."""

import pytest

from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.core.filters import (
    ArbitrationContext,
    BankFilter,
    Candidate,
    FILTER_NAMES,
    HazardFilter,
    PressureFilter,
    RealTimeFilter,
    RequestFilter,
    TieBreakFilter,
    UrgencyFilter,
    default_filter_chain,
)
from repro.core.qos import (
    QosRegisterFile,
    QosSetting,
    decode_setting,
    encode_setting,
)
from repro.errors import ConfigError


def txn(master=0, addr=0x0, write=False, issued=0):
    t = Transaction(
        master=master,
        kind=AccessKind.WRITE if write else AccessKind.READ,
        addr=addr,
        data=[0] if write else [],
    )
    t.issued_at = issued
    return t


def cand(master=0, addr=0x0, write=False, issued=0, rt=False, deadline=None, wb=False):
    return Candidate(
        txn=txn(master, addr, write, issued),
        from_write_buffer=wb,
        real_time=rt,
        deadline=deadline,
    )


def ctx(**kwargs):
    kwargs.setdefault("now", 100)
    return ArbitrationContext(**kwargs)


class TestQosRegisterFile:
    def test_register_word_roundtrip(self):
        setting = QosSetting(real_time=True, objective_cycles=123)
        assert decode_setting(encode_setting(setting)) == setting

    def test_write_read_word(self):
        regs = QosRegisterFile(2)
        regs.write_word(1, encode_setting(QosSetting(True, 55)))
        assert regs.read_word(1) == encode_setting(QosSetting(True, 55))
        assert regs.is_real_time(1)

    def test_default_is_nrt(self):
        regs = QosRegisterFile(2)
        assert not regs.is_real_time(0)
        assert regs.deadline_for(txn()) is None

    def test_deadline_from_objective(self):
        regs = QosRegisterFile(1)
        regs.configure(0, QosSetting(True, 50))
        t = txn(issued=10)
        assert regs.deadline_for(t) == 60

    def test_explicit_deadline_wins(self):
        regs = QosRegisterFile(1)
        regs.configure(0, QosSetting(True, 50))
        t = txn(issued=10)
        t.deadline = 30
        assert regs.deadline_for(t) == 30

    def test_rt_objective_required(self):
        with pytest.raises(ConfigError):
            QosSetting(real_time=True, objective_cycles=0)

    def test_out_of_range_master(self):
        regs = QosRegisterFile(2)
        with pytest.raises(ConfigError):
            regs.configure(5, QosSetting())

    def test_miss_tracking(self):
        regs = QosRegisterFile(1)
        regs.configure(0, QosSetting(True, 10))
        ok = txn(issued=0)
        ok.finished_at = 5
        regs.record_completion(ok)
        late = txn(issued=0)
        late.finished_at = 50
        regs.record_completion(late)
        assert regs.deadline_hits == 1 and regs.deadline_misses == 1
        assert regs.miss_rate() == 0.5

    def test_rt_masters_list(self):
        regs = QosRegisterFile(3)
        regs.configure(2, QosSetting(True, 9))
        assert regs.rt_masters == [2]


class TestFilters:
    def test_request_filter_drops_future_requests(self):
        filt = RequestFilter()
        live = cand(0, issued=50)
        future = cand(1, issued=150)
        assert filt.apply([live, future], ctx()) == [live]

    def test_hazard_filter_forces_buffer(self):
        filt = HazardFilter()
        reader = cand(0)
        drain = cand(2, wb=True, write=True)
        out = filt.apply([reader, drain], ctx(read_hazard=True))
        assert out == [drain]
        assert filt.apply([reader, drain], ctx(read_hazard=False)) == [reader, drain]

    def test_urgency_filter_edf_among_urgent(self):
        filt = UrgencyFilter()
        lax = cand(0, rt=True, deadline=500)
        urgent_a = cand(1, rt=True, deadline=120)
        urgent_b = cand(2, rt=True, deadline=110)
        out = filt.apply([lax, urgent_a, urgent_b], ctx(urgency_margin=32))
        assert [c.master for c in out] == [2]

    def test_urgency_filter_abstains_without_urgent(self):
        filt = UrgencyFilter()
        cands = [cand(0, rt=True, deadline=900), cand(1)]
        assert filt.apply(cands, ctx(urgency_margin=32)) == cands

    def test_real_time_filter(self):
        filt = RealTimeFilter()
        rt = cand(0, rt=True)
        nrt = cand(1)
        assert filt.apply([nrt, rt], ctx()) == [rt]
        assert filt.apply([nrt], ctx()) == [nrt]  # abstains

    def test_pressure_filter_at_watermark(self):
        filt = PressureFilter()
        drain = cand(2, wb=True, write=True)
        master = cand(0)
        full = ctx(write_buffer_occupancy=3, write_buffer_depth=4)
        assert filt.apply([master, drain], full) == [drain]
        light = ctx(write_buffer_occupancy=1, write_buffer_depth=4)
        assert filt.apply([master, drain], light) == [master, drain]

    def test_bank_filter_prefers_cheapest(self):
        scores = {0x0: 2, 0x100: 0}
        filt = BankFilter()
        conflict = cand(0, addr=0x0, issued=95)
        hit = cand(1, addr=0x100, issued=95)
        out = filt.apply([conflict, hit], ctx(access_score=lambda a: scores[a]))
        assert out == [hit]

    def test_bank_filter_abstains_without_scores(self):
        filt = BankFilter()
        cands = [cand(0), cand(1)]
        assert filt.apply(cands, ctx(access_score=None)) == cands

    def test_bank_filter_aging_bypasses_cost(self):
        scores = {0x0: 2, 0x100: 0}
        filt = BankFilter()
        starved = cand(0, addr=0x0, issued=0)
        fresh = cand(1, addr=0x100, issued=99)
        out = filt.apply(
            [starved, fresh],
            ctx(now=100, access_score=lambda a: scores[a], starvation_limit=32),
        )
        assert out == [starved]

    def test_tie_break_fixed(self):
        filt = TieBreakFilter("fixed", num_masters=4)
        out = filt.apply([cand(2), cand(1), cand(3)], ctx())
        assert [c.master for c in out] == [1]

    def test_tie_break_buffer_ranks_last(self):
        filt = TieBreakFilter("fixed", num_masters=4)
        out = filt.apply([cand(3), cand(0, wb=True, write=True)], ctx())
        assert out[0].master == 3

    def test_tie_break_round_robin_rotates(self):
        filt = TieBreakFilter("round_robin", num_masters=3)
        winners = []
        for _ in range(3):
            out = filt.apply([cand(0), cand(1), cand(2)], ctx())
            winners.append(out[0].master)
        assert winners == [0, 1, 2]

    def test_disabled_filter_passes_through(self):
        filt = RealTimeFilter()
        filt.enabled = False
        cands = [cand(0), cand(1, rt=True)]
        assert filt.apply(cands, ctx()) == cands

    def test_default_chain_has_seven_filters(self):
        chain = default_filter_chain()
        assert len(chain) == 7
        assert tuple(f.name for f in chain) == FILTER_NAMES

    def test_narrowing_stats(self):
        filt = RealTimeFilter()
        filt.apply([cand(0), cand(1, rt=True)], ctx())
        assert filt.rounds_applied == 1 and filt.rounds_narrowed == 1
