"""Tests for the TlmMaster traffic agent and the SRAM slave."""

import pytest

from repro.ahb.master import TlmMaster, TrafficItem
from repro.ahb.slave import SramSlave
from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.errors import ConfigError, TrafficError


def read(master=0, addr=0x100, beats=1):
    return Transaction(master=master, kind=AccessKind.READ, addr=addr, beats=beats)


def write(master=0, addr=0x100, data=(5,)):
    return Transaction(
        master=master,
        kind=AccessKind.WRITE,
        addr=addr,
        beats=len(data),
        data=list(data),
    )


class TestTlmMaster:
    def test_closed_loop_think_time(self):
        items = [
            TrafficItem(read(), think_cycles=3),
            TrafficItem(read(addr=0x200), think_cycles=4),
        ]
        agent = TlmMaster(0, "m", items)
        first = agent.pending(3)
        assert first is not None and agent.pending(2) is None
        agent.complete(first, 10)
        assert agent.earliest_request() == 14

    def test_not_before_constraint(self):
        items = [TrafficItem(read(), think_cycles=0, not_before=50)]
        agent = TlmMaster(0, "m", items)
        assert agent.pending(49) is None
        assert agent.pending(50) is not None

    def test_deadline_offset_applied_at_issue(self):
        items = [TrafficItem(read(), think_cycles=5, deadline_offset=100)]
        agent = TlmMaster(0, "m", items)
        txn = agent.pending(5)
        assert txn is not None and txn.deadline == 105

    def test_absolute_deadline_wins(self):
        items = [
            TrafficItem(
                read(), think_cycles=5, deadline_offset=None, absolute_deadline=77
            )
        ]
        agent = TlmMaster(0, "m", items)
        assert agent.pending(5).deadline == 77

    def test_absorb_marks_via_buffer(self):
        items = [TrafficItem(write())]
        agent = TlmMaster(0, "m", items)
        txn = agent.pending(0)
        agent.absorb(txn, 7)
        assert txn.via_write_buffer and txn.finished_at == 7
        assert agent.done

    def test_wrong_master_rejected(self):
        items = [TrafficItem(read(master=3))]
        with pytest.raises(TrafficError):
            TlmMaster(0, "m", items)

    def test_complete_foreign_txn_rejected(self):
        agent = TlmMaster(0, "m", [TrafficItem(read())])
        with pytest.raises(TrafficError):
            agent.complete(read(), 5)

    def test_done_and_counters(self):
        agent = TlmMaster(0, "m", [TrafficItem(read(beats=4))])
        txn = agent.pending(0)
        agent.complete(txn, 9)
        assert agent.done
        assert agent.transactions_completed == 1
        assert agent.bytes_completed == 16


class TestSramSlave:
    def test_write_then_read_roundtrip(self):
        slave = SramSlave(wait_states=1)
        w = write(data=(0xAA, 0xBB))
        finish = slave.serve(w, 0)
        r = read(beats=2)
        slave.serve(r, finish + 1)
        assert r.data == [0xAA, 0xBB]

    def test_timing_first_access_wait_states(self):
        slave = SramSlave(wait_states=2, burst_wait_states=0)
        txn = read(beats=4)
        finish = slave.serve(txn, 10)
        # addr phase at 10; first beat lands after 2 waits (cycle 13);
        # three more back-to-back beats end at cycle 16.
        assert finish == 16

    def test_out_of_range_rejected(self):
        slave = SramSlave(size=0x100)
        with pytest.raises(ConfigError):
            slave.serve(read(addr=0x200), 0)

    def test_negative_wait_states_rejected(self):
        with pytest.raises(ConfigError):
            SramSlave(wait_states=-1)

    def test_default_bi_hooks(self):
        slave = SramSlave()
        assert slave.idle_banks(0) == ~0
        txn = read()
        assert slave.access_permitted_at(txn, 5) == 5
