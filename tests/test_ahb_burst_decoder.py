"""Tests for burst address math and the address decoder."""

import pytest
from hypothesis import given, strategies as st

from repro.ahb.burst import (
    KB_BOUNDARY,
    beat_addresses,
    burst_footprint,
    check_burst_legal,
    crosses_kb_boundary,
    split_at_kb_boundary,
    transaction_addresses,
)
from repro.ahb.decoder import AddressMap, single_slave_map
from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.errors import ConfigError, MemoryError_, ProtocolError


class TestBeatAddresses:
    def test_incrementing(self):
        assert beat_addresses(0x20, 4, 4) == [0x20, 0x24, 0x28, 0x2C]

    def test_wrapping_wraps_at_burst_boundary(self):
        # WRAP4 of 4-byte beats starting at 0x28 wraps inside [0x20,0x30).
        assert beat_addresses(0x28, 4, 4, wrapping=True) == [
            0x28,
            0x2C,
            0x20,
            0x24,
        ]

    def test_misaligned_rejected(self):
        with pytest.raises(ProtocolError):
            beat_addresses(0x21, 4, 4)

    @given(
        addr_words=st.integers(min_value=0, max_value=10_000),
        beats=st.sampled_from([1, 4, 8, 16]),
        size=st.sampled_from([1, 2, 4, 8]),
        wrapping=st.booleans(),
    )
    def test_properties(self, addr_words, beats, size, wrapping):
        addr = addr_words * size
        addrs = beat_addresses(addr, beats, size, wrapping)
        assert len(addrs) == beats
        assert addrs[0] == addr
        assert all(a % size == 0 for a in addrs)
        if wrapping:
            span = beats * size
            base = (addr // span) * span
            assert all(base <= a < base + span for a in addrs)
            assert len(set(addrs)) == beats
        else:
            assert addrs == sorted(addrs)


class TestBurstFootprint:
    def test_incrementing_is_linear(self):
        assert burst_footprint(0x20, 4, 4) == (0x20, 0x30)

    def test_wrapping_is_the_aligned_block(self):
        # WRAP8 of 4-byte beats at 0x290 touches the whole [0x280,0x2a0)
        # block — including the bytes *below* the start address.
        assert burst_footprint(0x290, 8, 4, wrapping=True) == (0x280, 0x2A0)

    @given(
        addr_words=st.integers(min_value=0, max_value=10_000),
        beats=st.sampled_from([1, 4, 8, 16]),
        size=st.sampled_from([1, 2, 4, 8]),
        wrapping=st.booleans(),
    )
    def test_footprint_covers_exactly_the_beat_addresses(
        self, addr_words, beats, size, wrapping
    ):
        addr = addr_words * size
        lo, hi = burst_footprint(addr, beats, size, wrapping)
        touched = beat_addresses(addr, beats, size, wrapping)
        assert all(lo <= a and a + size <= hi for a in touched)
        assert hi - lo == beats * size


class TestKbBoundary:
    def test_crossing_detection(self):
        assert crosses_kb_boundary(KB_BOUNDARY - 8, 4, 4)
        assert not crosses_kb_boundary(0, 16, 4)

    def test_check_burst_legal(self):
        bad = Transaction(
            master=0, kind=AccessKind.READ, addr=KB_BOUNDARY - 8, beats=4
        )
        with pytest.raises(ProtocolError):
            check_burst_legal(bad)
        good = Transaction(master=0, kind=AccessKind.READ, addr=0, beats=16)
        check_burst_legal(good)

    def test_split_preserves_beats_and_data(self):
        txn = Transaction(
            master=1,
            kind=AccessKind.WRITE,
            addr=KB_BOUNDARY - 8,
            beats=4,
            data=[10, 11, 12, 13],
        )
        pieces = split_at_kb_boundary(txn)
        assert len(pieces) == 2
        assert sum(p.beats for p in pieces) == 4
        flat = [d for p in pieces for d in p.data]
        assert flat == [10, 11, 12, 13]
        for piece in pieces:
            check_burst_legal(piece)

    def test_split_noop_when_legal(self):
        txn = Transaction(master=0, kind=AccessKind.READ, addr=0, beats=8)
        assert split_at_kb_boundary(txn) == [txn]

    def test_transaction_addresses(self):
        txn = Transaction(master=0, kind=AccessKind.READ, addr=0x40, beats=2)
        assert transaction_addresses(txn) == [0x40, 0x44]


class TestAddressMap:
    def test_decode(self):
        amap = AddressMap()
        amap.add("rom", 0x0000, 0x1000, slave_index=0)
        amap.add("ram", 0x1000, 0x1000, slave_index=1)
        assert amap.slave_for(0x0800) == 0
        assert amap.slave_for(0x1800) == 1

    def test_overlap_rejected(self):
        amap = AddressMap()
        amap.add("a", 0, 0x100, 0)
        with pytest.raises(ConfigError):
            amap.add("b", 0x80, 0x100, 1)

    def test_unmapped_raises(self):
        amap = single_slave_map(size=0x100)
        with pytest.raises(MemoryError_):
            amap.decode(0x200)

    def test_try_decode_returns_none(self):
        assert single_slave_map(size=0x100).try_decode(0x200) is None

    def test_span(self):
        amap = AddressMap()
        amap.add("a", 0, 0x100, 0)
        amap.add("b", 0x200, 0x80, 1)
        assert amap.span() == 0x180

    def test_bad_region(self):
        with pytest.raises(ConfigError):
            AddressMap().add("bad", 0, 0, 0)
