"""Seeded fault injection: error-capable slaves at every engine.

Pins the tentpole acceptance criterion: a workload (or slave) with an
injected :class:`~repro.traffic.faults.FaultSpec` runs at TLM,
threaded-TLM, plain-AHB and RTL with the identical per-transaction
``(master, kind, addr, resp)`` sequence and identical error/retry
counters — fault plans are stamped at traffic-build time from
``(seed, master, ordinal)``, never drawn from engine state.
"""

import json
from dataclasses import asdict

import pytest

from repro.ahb.types import HResp
from repro.analysis import trace_diff
from repro.assertions.protocol import TransactionChecker
from repro.errors import ConfigError
from repro.system import PlatformBuilder
from repro.system.spec import LEVELS, BusSpec, SlaveSpec, SystemSpec
from repro.traffic import (
    FaultSpec,
    MasterSpec,
    TraceRecorder,
    TrafficPattern,
    Workload,
    load_trace_file,
    plan_for,
    save_trace,
)
from repro.traffic.trace import record_from_payload


def _pattern(index, read_fraction=0.5):
    return TrafficPattern(
        name=f"flt-m{index}",
        read_fraction=read_fraction,
        burst_mix=((1, 0.3), (4, 0.4), (8, 0.3)),
        think_range=(0, 2),
        base_addr=index << 16,
        addr_span=1 << 12,
        sequential_fraction=0.5,
        size_bytes=4,
    )


def _faulty_workload(transactions=24, fault=None):
    if fault is None:
        fault = FaultSpec(
            seed=11, error_rate=0.2, retry_rate=0.3, max_retries=2, retry_limit=3
        )
    masters = tuple(
        MasterSpec(f"m{index}", _pattern(index), transactions)
        for index in range(2)
    )
    return Workload(name="faulty", seed=5, masters=masters, fault=fault)


def _run(spec, level):
    platform = PlatformBuilder(spec).build(level)
    recorder = TraceRecorder()
    platform.attach(recorder)
    result = platform.run()
    return recorder.records, result


def _functional(records):
    """Per-master (kind, addr, beats, resp) sequences in issue order.

    Raw record order is completion order — legitimately different
    across engines — so the cross-engine comparison must be per-master.
    """
    from repro.traffic import group_by_master

    grouped = group_by_master(records, sort=True)
    return {
        master: [(r.kind, r.addr, r.beats, r.resp) for r in stream]
        for master, stream in grouped.items()
    }


class TestFaultSpec:
    def test_plan_is_deterministic(self):
        spec = FaultSpec(seed=3, error_rate=0.3, retry_rate=0.3)
        assert spec.plan(0, 7) == spec.plan(0, 7)
        plans = {spec.plan(m, o) for m in range(4) for o in range(50)}
        assert () in plans  # most transfers pass
        assert (int(HResp.ERROR),) in plans
        assert any(p and p[0] == int(HResp.RETRY) for p in plans)

    def test_retry_runs_bounded_by_max_retries(self):
        spec = FaultSpec(seed=9, retry_rate=1.0, max_retries=3)
        for ordinal in range(40):
            plan = spec.plan(0, ordinal)
            assert 1 <= len(plan) <= 3
            assert all(code == int(HResp.RETRY) for code in plan)

    def test_error_rate_one_always_errors(self):
        spec = FaultSpec(seed=1, error_rate=1.0)
        assert all(
            spec.plan(m, o) == (int(HResp.ERROR),)
            for m in range(3)
            for o in range(20)
        )

    def test_validation(self):
        with pytest.raises(ConfigError, match="error_rate"):
            FaultSpec(error_rate=1.5)
        with pytest.raises(ConfigError, match="retry_rate"):
            FaultSpec(retry_rate=-0.1)
        with pytest.raises(ConfigError, match="exceed"):
            FaultSpec(error_rate=0.6, retry_rate=0.6)
        with pytest.raises(ConfigError, match="max_retries"):
            FaultSpec(max_retries=0)
        with pytest.raises(ConfigError, match="retry_limit"):
            FaultSpec(retry_limit=-1)
        with pytest.raises(ConfigError, match="together"):
            FaultSpec(window_base=0)
        with pytest.raises(ConfigError, match="window_size"):
            FaultSpec(window_base=0, window_size=0)

    def test_window_matching(self):
        spec = FaultSpec(error_rate=0.5, window_base=0x1000, window_size=0x100)
        assert spec.matches(0x1000) and spec.matches(0x10FF)
        assert not spec.matches(0xFFF) and not spec.matches(0x1100)
        # windowed() only fills an unset window.
        assert spec.windowed(0, 1 << 20) is spec
        opened = FaultSpec(error_rate=0.5).windowed(0x2000, 0x80)
        assert opened.window_base == 0x2000 and opened.window_size == 0x80

    def test_plan_for_respects_windows(self):
        inside = FaultSpec(
            seed=2, error_rate=1.0, window_base=0, window_size=0x100
        )
        assert plan_for((inside,), 0, 0, 0x80) == (int(HResp.ERROR),)
        assert plan_for((inside,), 0, 0, 0x200) == ()

    def test_json_round_trip(self):
        spec = FaultSpec(
            seed=7,
            error_rate=0.1,
            retry_rate=0.2,
            max_retries=3,
            retry_limit=2,
            window_base=0x400,
            window_size=0x100,
        )
        clone = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        with pytest.raises(ConfigError, match="unknown"):
            FaultSpec.from_dict({"seed": 1, "explosions": True})

    def test_workload_round_trip_carries_fault(self):
        workload = _faulty_workload(8)
        clone = Workload.from_dict(json.loads(json.dumps(workload.to_dict())))
        assert clone == workload
        assert clone.fault == workload.fault


class TestCrossEngineFaultEquivalence:
    def test_workload_fault_identical_at_every_level(self):
        """The acceptance criterion: one faulted workload, four engines,
        identical (master, kind, addr, resp) sequences and counters."""
        spec = SystemSpec(name="faulted", workload=_faulty_workload())
        reference, ref_result = _run(spec, "tlm")
        assert ref_result.error_responses > 0
        assert ref_result.retry_responses > 0
        for level in [lvl for lvl in LEVELS if lvl != "tlm"]:
            records, result = _run(spec, level)
            assert result.error_responses == ref_result.error_responses, level
            assert result.retry_responses == ref_result.retry_responses, level
            diff = trace_diff(reference, records)
            assert diff.functionally_identical, (
                f"tlm vs {level}: {diff.summary()}"
            )
            assert _functional(records) == _functional(reference), level

    def test_slave_window_fault_identical_at_every_level(self):
        """A fault riding on a SlaveSpec defaults its window to the
        slave's region; only traffic into that region faults, and every
        engine agrees on which transfers those are."""
        fault = FaultSpec(seed=21, error_rate=0.4, window_size=None)
        workload = _faulty_workload(transactions=16, fault=None)
        workload = Workload(
            name="slave-fault",
            seed=workload.seed,
            masters=(
                # Master 0 stays inside the faulty window, master 1 out.
                MasterSpec("m0", _pattern(0), 16),
                MasterSpec("m1", _pattern(1), 16),
            ),
        )
        slaves = (
            SlaveSpec(
                name="ddr",
                kind="ddr",
                base=0,
                size=1 << 20,
                fault=FaultSpec(
                    seed=21, error_rate=0.4, window_base=0, window_size=1 << 16
                ),
            ),
        )
        spec = SystemSpec(name="slave-fault", workload=workload, slaves=slaves)
        reference, ref_result = _run(spec, "tlm")
        assert ref_result.error_responses > 0
        by_master = {0: set(), 1: set()}
        for record in reference:
            by_master[record.master].add(record.resp)
        assert int(HResp.ERROR) in by_master[0]  # window faults fire
        assert by_master[1] == {0}  # outside the window: OKAY only
        for level in [lvl for lvl in LEVELS if lvl != "tlm"]:
            records, result = _run(spec, level)
            assert result.error_responses == ref_result.error_responses, level
            assert _functional(records) == _functional(reference), level

    def test_fault_free_spec_reports_zero_counters(self):
        spec = SystemSpec(name="clean", workload=_faulty_workload(fault=FaultSpec()))
        _records, result = _run(spec, "tlm")
        assert result.error_responses == 0
        assert result.retry_responses == 0


class TestFaultTraceRoundTrip:
    def test_faulted_capture_replays_identically(self, tmp_path):
        """Capture a faulted run, save/load the trace, replay at the
        other engines: the archived fault plans reproduce the identical
        ERROR/RETRY outcome without the workload's FaultSpec."""
        spec = SystemSpec(name="faulted", workload=_faulty_workload())
        config = spec.config()
        reference, _result = _run(spec, "tlm")
        path = tmp_path / "faulted.jsonl"
        save_trace(reference, path)
        loaded = load_trace_file(path)
        assert any(record.fault_plan for record in loaded)
        assert any(record.resp == int(HResp.ERROR) for record in loaded)
        replay = SystemSpec(
            name="replay",
            workload=Workload.from_trace(tuple(loaded), name="replay"),
            bus=BusSpec(config=config),
        )
        for level in ("tlm", "plain", "rtl"):
            records, _ = _run(replay, level)
            assert _functional(records) == _functional(reference), level

    def test_fault_fields_survive_payload_round_trip(self):
        spec = SystemSpec(name="faulted", workload=_faulty_workload(8))
        records, _ = _run(spec, "tlm")
        for record in records:
            clone = record_from_payload(
                json.loads(json.dumps(asdict(record)))
            )
            assert clone == record


class TestViolationProvenance:
    def test_flag_carries_engine_seed_master_and_uid(self):
        from repro.ahb.transaction import Transaction
        from repro.ahb.types import AccessKind

        checker = TransactionChecker().bind("rtl", seed=99)
        txn = Transaction(
            master=2, kind=AccessKind.READ, addr=0x40, beats=4
        )
        txn.data = [1, 2]  # wrong shape for an OKAY read
        txn.issued_at = 0
        checker(txn, 1, 2, 9)
        [violation] = [
            v for v in checker.violations if v.rule == "data-shape"
        ]
        assert violation.engine == "rtl"
        assert violation.seed == 99
        assert violation.master == 2
        assert violation.txn_uid == txn.uid
        rendered = str(violation)
        assert "rtl" in rendered and "seed 99" in rendered
        assert f"txn {txn.uid}" in rendered

    def test_unbound_checker_defaults_stay_empty(self):
        checker = TransactionChecker()
        assert checker.engine == "" and checker.seed is None
