"""The repro.exec runner layer: records, backends, determinism.

The load-bearing guarantee is the satellite requirement: the process
backend must return records *equal* to the serial backend for the QoS
and filter grids — same counters, same order — with only wall time
(excluded from equality) differing.
"""

import pytest

import repro.core  # noqa: F401  (anchor package import order)
from repro.analysis.experiments import (
    _collect_deadline_stats,
    filter_ablation_grid,
)
from repro.errors import ConfigError
from repro.exec import BACKENDS, RunRecord, SweepRunner, default_workers, run_grid
from repro.system import paper_topology, sweep
from repro.traffic import saturating_workload, write_heavy_workload


def _qos_grid(transactions=30):
    spec = paper_topology(workload=saturating_workload(transactions))
    return sweep(
        spec,
        axis="engine",
        values=("plain", "tlm"),
        labels=("plain-ahb", "ahb+"),
    )


class TestRunRecord:
    def test_from_run_and_round_trip(self):
        [point] = sweep(
            paper_topology(workload=write_heavy_workload(20)),
            axis="write_buffer_depth",
            values=(4,),
        )
        [record] = SweepRunner().run([point])
        assert record.axis == "write_buffer_depth"
        assert record.value == "4"
        assert record.engine == "tlm"
        assert record.system == point.spec.name
        assert record.cycles > 0 and record.transactions > 0
        assert 0.0 < record.utilization <= 1.0
        assert record.wall_seconds > 0
        rebuilt = RunRecord.from_dict(record.to_dict())
        assert rebuilt == record

    def test_equality_ignores_wall_time(self):
        grid = _qos_grid(10)
        a = SweepRunner().run(grid)
        b = SweepRunner().run(grid)
        assert a == b  # wall clocks certainly differed

    def test_metric_lookup(self):
        [record] = SweepRunner().run(
            _qos_grid(10)[1:], collect=_collect_deadline_stats
        )
        assert record.metric("rt_transactions") > 0
        assert record.metric("nope", default=7) == 7
        with pytest.raises(ConfigError):
            record.metric("nope")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            RunRecord.from_dict({"label": "x", "bogus": 1})


class TestBackendEquivalence:
    """Satellite requirement: process records == serial records."""

    def test_qos_grid(self):
        grid = _qos_grid()
        serial = SweepRunner(backend="serial").run(
            grid, collect=_collect_deadline_stats
        )
        process = SweepRunner(backend="process").run(
            grid, collect=_collect_deadline_stats
        )
        assert serial == process
        assert [r.label for r in process] == ["plain-ahb", "ahb+"]

    def test_filter_grid(self):
        grid = filter_ablation_grid(40)
        serial = SweepRunner(backend="serial").run(grid)
        process = SweepRunner(backend="process").run(grid)
        assert serial == process
        assert [r.label for r in process] == [p.label for p in grid]

    def test_chunked_pool_preserves_grid_order(self):
        grid = filter_ablation_grid(30)
        records = SweepRunner(
            backend="process", workers=2, chunksize=3
        ).run(grid)
        assert [r.label for r in records] == [p.label for p in grid]


class TestOnResultStreaming:
    """Satellite requirement: ``on_result`` fires per point, in grid
    order, on every backend — the hook the serving layer streams
    progress through."""

    def test_serial_backend_streams_in_grid_order(self):
        grid = filter_ablation_grid(30)
        seen = []
        records = SweepRunner(backend="serial").run(
            grid, on_result=lambda i, r: seen.append((i, r))
        )
        assert [i for i, _ in seen] == list(range(len(grid)))
        assert [r for _, r in seen] == records

    def test_process_backend_streams_in_grid_order(self):
        grid = filter_ablation_grid(30)
        seen = []
        records = SweepRunner(
            backend="process", workers=2, chunksize=3
        ).run(grid, on_result=lambda i, r: seen.append((i, r)))
        assert [i for i, _ in seen] == list(range(len(grid)))
        assert [r for _, r in seen] == records

    def test_callback_does_not_change_the_records(self):
        grid = filter_ablation_grid(30)
        plain = SweepRunner(backend="process", workers=2).run(grid)
        streamed = SweepRunner(backend="process", workers=2).run(
            grid, on_result=lambda i, r: None
        )
        assert streamed == plain

    def test_callback_must_be_callable(self):
        with pytest.raises(ConfigError, match="on_result"):
            SweepRunner().run(_qos_grid(10), on_result="notify")


class TestRunnerKnobs:
    def test_empty_grid(self):
        assert SweepRunner().run([]) == []

    def test_invalid_arguments(self):
        with pytest.raises(ConfigError):
            SweepRunner(backend="gpu")
        with pytest.raises(ConfigError):
            SweepRunner(workers=0)
        with pytest.raises(ConfigError):
            SweepRunner(chunksize=0)
        with pytest.raises(ConfigError):
            SweepRunner(repeats=0)

    def test_repeats_keep_counters_identical(self):
        grid = _qos_grid(10)
        once = SweepRunner(repeats=1).run(grid)
        thrice = SweepRunner(repeats=3).run(grid)
        assert once == thrice

    def test_run_grid_helper(self):
        grid = _qos_grid(10)
        assert run_grid(grid) == run_grid(grid, backend="process")

    def test_default_workers_caps(self):
        assert default_workers(1) == 1
        assert default_workers() >= 1

    def test_shared_pool_is_reused_and_deterministic(self):
        from repro.exec import shared_pool

        pool = shared_pool(1)
        assert shared_pool(1) is pool  # cached per worker count
        grid = _qos_grid(10)
        runner = SweepRunner(backend="process", workers=1, pool=pool)
        first = runner.run(grid)
        second = runner.run(grid)  # pool survives across runs
        assert first == second == SweepRunner(backend="serial").run(grid)

    def test_pool_requires_process_backend(self):
        from repro.exec import shared_pool

        with pytest.raises(ConfigError):
            SweepRunner(backend="serial", pool=shared_pool(1))

    def test_backends_constant(self):
        assert BACKENDS == ("serial", "process", "batch")
