"""Batched stream generator: compat bit-exactness and stream-mode laws.

The compat-mode contract is the strongest kind: for every
``(pattern, master, count, seed)`` the new generator must produce the
*identical* ``TrafficItem`` sequence the seed implementation produced.
``_legacy_generate`` below is a verbatim frozen copy of that seed
implementation — the golden arbitration trace pins the same property
end-to-end, this test pins it item by item.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.ahb.burst import KB_BOUNDARY, check_burst_legal
from repro.ahb.master import TrafficItem
from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.errors import TrafficError
from repro.traffic import (
    CPU,
    DMA,
    MPEG,
    VIDEO,
    WRITER,
    GENERATION_MODES,
    TrafficPattern,
    TrafficStream,
    Workload,
    generate_items,
    stream_items,
    table1_pattern_a,
)


# -- the frozen seed implementation (reference for compat mode) -----------------


def _legal_beats(addr, beats, size_bytes, span_end):
    room_kb = (KB_BOUNDARY - addr % KB_BOUNDARY) // size_bytes
    room_span = (span_end - addr) // size_bytes
    return max(1, min(beats, room_kb, room_span))


def _legacy_generate(pattern, master_index, count, seed):
    """Verbatim copy of the seed repo's ``generate_items`` loop."""
    rng = random.Random(f"{seed}/{pattern.name}/{master_index}")
    items = []
    burst_choices = [beats for beats, _w in pattern.burst_mix]
    burst_weights = [weight for _b, weight in pattern.burst_mix]
    span_end = pattern.base_addr + pattern.addr_span
    next_sequential = pattern.base_addr
    data_mask = (1 << (8 * pattern.size_bytes)) - 1
    for index in range(count):
        beats = rng.choices(burst_choices, weights=burst_weights)[0]
        if rng.random() < pattern.sequential_fraction:
            addr = next_sequential
            if addr + beats * pattern.size_bytes > span_end:
                addr = pattern.base_addr
        else:
            span_words = pattern.addr_span // pattern.size_bytes
            addr = (
                pattern.base_addr
                + rng.randrange(span_words) * pattern.size_bytes
            )
        wrapping = False
        if beats in (4, 8, 16) and pattern.wrap_fraction > 0:
            block = beats * pattern.size_bytes
            block_base = (addr // block) * block
            if (
                block_base >= pattern.base_addr
                and block_base + block <= span_end
                and rng.random() < pattern.wrap_fraction
            ):
                wrapping = True
        if not wrapping:
            beats = _legal_beats(addr, beats, pattern.size_bytes, span_end)
        advance = (
            pattern.stride_bytes
            if pattern.stride_bytes is not None
            else beats * pattern.size_bytes
        )
        next_sequential = addr + advance
        if next_sequential >= span_end:
            next_sequential = pattern.base_addr
        is_read = rng.random() < pattern.read_fraction
        txn = Transaction(
            master=master_index,
            kind=AccessKind.READ if is_read else AccessKind.WRITE,
            addr=addr,
            beats=beats,
            size_bytes=pattern.size_bytes,
            wrapping=wrapping,
            data=(
                []
                if is_read
                else [rng.getrandbits(32) & data_mask for _ in range(beats)]
            ),
        )
        think = rng.randint(*pattern.think_range)
        not_before = None
        absolute_deadline = None
        if pattern.period is not None:
            not_before = index * pattern.period
            if pattern.deadline_offset is not None:
                absolute_deadline = not_before + pattern.deadline_offset
        items.append(
            TrafficItem(
                txn=txn,
                think_cycles=think,
                not_before=not_before,
                deadline_offset=(
                    None
                    if absolute_deadline is not None
                    else pattern.deadline_offset
                ),
                absolute_deadline=absolute_deadline,
            )
        )
    return items


def _item_tuple(item):
    txn = item.txn
    return (
        txn.master,
        txn.kind,
        txn.addr,
        txn.beats,
        txn.size_bytes,
        txn.wrapping,
        tuple(txn.data),
        item.think_cycles,
        item.not_before,
        item.deadline_offset,
        item.absolute_deadline,
    )


WRAPPY = replace(CPU, wrap_fraction=0.6)
STRIDED = replace(
    DMA,
    sequential_fraction=1.0,
    stride_bytes=0x1000,
    burst_mix=((4, 1.0),),
    addr_span=0x10000,
)

PATTERNS = (CPU, DMA, VIDEO, WRITER, WRAPPY, STRIDED)


class TestCompatBitExactness:
    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.name)
    def test_matches_frozen_seed_implementation(self, pattern):
        for seed in (1, 7, 11, 33):
            want = [_item_tuple(i) for i in _legacy_generate(pattern, 2, 60, seed)]
            got = [_item_tuple(i) for i in generate_items(pattern, 2, 60, seed)]
            assert got == want

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(0, 40))
    def test_matches_frozen_seed_implementation_fuzzed(self, seed, count):
        want = [_item_tuple(i) for i in _legacy_generate(WRAPPY, 0, count, seed)]
        got = [_item_tuple(i) for i in generate_items(WRAPPY, 0, count, seed)]
        assert got == want

    def test_lazy_stream_equals_eager_list(self):
        stream = stream_items(CPU, 1, 50, seed=9)
        eager = generate_items(CPU, 1, 50, seed=9)
        assert [_item_tuple(i) for i in stream] == [
            _item_tuple(i) for i in eager
        ]


class TestStreamMode:
    def test_deterministic_per_seed_and_reiterable(self):
        stream = stream_items(DMA, 0, 80, seed=3, mode="stream")
        first = [_item_tuple(i) for i in stream]
        second = [_item_tuple(i) for i in stream]  # restart from seed
        assert first == second
        assert first == [
            _item_tuple(i) for i in generate_items(DMA, 0, 80, 3, mode="stream")
        ]

    def test_different_seeds_differ(self):
        a = generate_items(CPU, 0, 50, 7, mode="stream")
        b = generate_items(CPU, 0, 50, 8, mode="stream")
        assert [i.txn.addr for i in a] != [i.txn.addr for i in b]

    @pytest.mark.parametrize(
        "pattern", (*PATTERNS, MPEG), ids=lambda p: p.name
    )
    def test_protocol_legal(self, pattern):
        for item in generate_items(pattern, 0, 300, 13, mode="stream"):
            txn = item.txn
            check_burst_legal(txn)
            assert txn.addr % txn.size_bytes == 0
            end = pattern.base_addr + pattern.addr_span
            assert pattern.base_addr <= txn.addr < end
            assert txn.addr + txn.total_bytes <= end

    def test_write_items_carry_data(self):
        writer = replace(CPU, read_fraction=0.0)
        for item in generate_items(writer, 0, 30, 3, mode="stream"):
            assert item.txn.is_write
            assert len(item.txn.data) == item.txn.beats
            assert all(0 <= w < (1 << 32) for w in item.txn.data)

    def test_periodic_pattern_sets_schedule(self):
        items = generate_items(VIDEO, 0, 5, 1, mode="stream")
        assert [i.not_before for i in items] == [
            k * VIDEO.period for k in range(5)
        ]
        assert all(i.absolute_deadline is not None for i in items)

    def test_chunk_boundaries_are_invisible(self):
        whole = [
            _item_tuple(i)
            for i in TrafficStream(CPU, 0, 100, 5, mode="stream", chunk=1000)
        ]
        chunked = [
            _item_tuple(i)
            for i in TrafficStream(CPU, 0, 100, 5, mode="stream", chunk=7)
        ]
        assert whole == chunked

    def test_spans_legal_and_sequential_chain(self):
        items = generate_items(STRIDED, 0, 4, 1, mode="stream")
        addrs = [i.txn.addr for i in items]
        assert addrs == [0x0, 0x1000, 0x2000, 0x3000]


class TestBurstGap:
    def test_gap_applies_at_burst_boundaries(self):
        per_burst, gap_lo, gap_hi = MPEG.burst_gap
        for mode in GENERATION_MODES:
            items = generate_items(MPEG, 0, 3 * per_burst + 1, 4, mode=mode)
            for index, item in enumerate(items):
                if index > 0 and index % per_burst == 0:
                    assert gap_lo <= item.think_cycles <= gap_hi, (mode, index)
                else:
                    lo, hi = MPEG.think_range
                    assert lo <= item.think_cycles <= hi, (mode, index)

    def test_validation(self):
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", burst_gap=(0, 1, 2))
        with pytest.raises(TrafficError):
            TrafficPattern(name="bad", burst_gap=(4, 5, 2))

    def test_pattern_round_trip(self):
        rebuilt = TrafficPattern.from_dict(MPEG.to_dict())
        assert rebuilt == MPEG


class TestModesAndWorkloads:
    def test_unknown_mode_rejected(self):
        with pytest.raises(TrafficError):
            generate_items(CPU, 0, 5, 1, mode="quantum")
        with pytest.raises(TrafficError):
            Workload("w", table1_pattern_a(5).masters, 1, gen_mode="quantum")

    def test_negative_count_rejected(self):
        with pytest.raises(TrafficError):
            stream_items(CPU, 0, -1, seed=0)

    def test_len_without_materialising(self):
        assert len(stream_items(CPU, 0, 123, 1, mode="stream")) == 123

    def test_workload_gen_mode_round_trips(self):
        workload = Workload(
            "w", table1_pattern_a(5).masters, 1, gen_mode="stream"
        )
        rebuilt = Workload.from_dict(workload.to_dict())
        assert rebuilt == workload
        assert rebuilt.gen_mode == "stream"

    def test_stream_workload_platforms_agree(self):
        """A stream-mode workload is the same stream at every level."""
        from repro.system import PlatformBuilder, paper_topology

        workload = Workload(
            "w", table1_pattern_a(12).masters, 3, gen_mode="stream"
        )
        builder = PlatformBuilder(paper_topology(workload=workload))
        tlm = builder.build("tlm")
        tlm_result = tlm.run()
        rtl = builder.build("rtl")
        rtl.run()
        assert rtl.memory.equal_contents(tlm.memory)
        assert tlm_result.transactions > 0
