"""Multi-region AddressMap decoding: overlaps, defaults, boundaries.

The multi-slave scenarios route every transfer through
``AddressMap.slave_for``; these tests pin the decode semantics the
system layer relies on: overlapping regions are rejected at
construction, unmapped addresses either raise (strict mode) or fall to
the configured default slave, and decoding is exact at the first/last
byte of each region — including the beat addresses of wrap bursts
placed against a region edge.
"""

import pytest

from repro.ahb import AddressMap, Region, single_slave_map
from repro.ahb.burst import beat_addresses
from repro.errors import ConfigError, MemoryError_

DDR_BASE, DDR_SIZE = 0x0000_0000, 1 << 26
SRAM_BASE, SRAM_SIZE = 0x0800_0000, 1 << 20
APB_BASE, APB_SIZE = 0x0900_0000, 1 << 16


def soc_map(default_slave=None) -> AddressMap:
    amap = AddressMap(default_slave=default_slave)
    amap.add("ddr", DDR_BASE, DDR_SIZE, 0)
    amap.add("sram", SRAM_BASE, SRAM_SIZE, 1)
    amap.add("apb", APB_BASE, APB_SIZE, 2)
    return amap


class TestOverlapRejection:
    def test_identical_region_rejected(self):
        amap = soc_map()
        with pytest.raises(ConfigError, match="overlaps"):
            amap.add("sram2", SRAM_BASE, SRAM_SIZE, 3)

    def test_partial_overlap_from_below_rejected(self):
        amap = soc_map()
        with pytest.raises(ConfigError, match="overlaps"):
            amap.add("bad", SRAM_BASE - 0x100, 0x200, 3)

    def test_region_swallowing_another_rejected(self):
        amap = soc_map()
        with pytest.raises(ConfigError, match="overlaps"):
            amap.add("huge", 0, 1 << 32, 3)

    def test_rejected_region_leaves_map_unchanged(self):
        amap = soc_map()
        with pytest.raises(ConfigError):
            amap.add("bad", SRAM_BASE, 4, 3)
        assert len(amap.regions) == 3
        assert amap.slave_for(SRAM_BASE) == 1

    def test_adjacent_regions_are_legal(self):
        amap = AddressMap()
        amap.add("lo", 0x0, 0x1000, 0)
        amap.add("hi", 0x1000, 0x1000, 1)  # touches, does not overlap
        assert amap.slave_for(0x0FFF) == 0
        assert amap.slave_for(0x1000) == 1

    def test_bad_region_geometry_rejected(self):
        with pytest.raises(ConfigError):
            Region(name="bad", base=-4, size=16, slave_index=0)
        with pytest.raises(ConfigError):
            Region(name="bad", base=0, size=0, slave_index=0)


class TestUnmappedAddresses:
    def test_strict_map_raises_on_unmapped(self):
        amap = soc_map()
        hole = SRAM_BASE - 4  # between DDR top and SRAM base
        with pytest.raises(MemoryError_, match="no mapped region"):
            amap.decode(hole)
        with pytest.raises(MemoryError_):
            amap.slave_for(hole)
        assert amap.try_decode(hole) is None

    def test_default_slave_catches_unmapped(self):
        amap = soc_map(default_slave=2)
        hole = APB_BASE + APB_SIZE + 0x40
        assert amap.slave_for(hole) == 2
        # Mapped addresses still route to their own region.
        assert amap.slave_for(DDR_BASE) == 0
        assert amap.slave_for(SRAM_BASE + 0x10) == 1

    def test_default_slave_does_not_relax_decode(self):
        # decode() reports *regions*; an unmapped address has none even
        # when routing falls back to the default slave.
        amap = soc_map(default_slave=0)
        assert amap.try_decode(SRAM_BASE - 4) is None

    def test_negative_default_slave_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(default_slave=-1)


class TestRegionBoundaries:
    @pytest.mark.parametrize(
        "base,size,index",
        [(DDR_BASE, DDR_SIZE, 0), (SRAM_BASE, SRAM_SIZE, 1), (APB_BASE, APB_SIZE, 2)],
    )
    def test_first_and_last_byte_route_inside(self, base, size, index):
        amap = soc_map()
        assert amap.slave_for(base) == index
        assert amap.slave_for(base + size - 1) == index
        assert amap.decode(base).slave_index == index
        assert amap.decode(base + size - 1).slave_index == index

    def test_one_past_the_end_is_outside(self):
        amap = soc_map()
        with pytest.raises(MemoryError_):
            amap.slave_for(APB_BASE + APB_SIZE)
        # SRAM end falls into unmapped space before the APB base.
        with pytest.raises(MemoryError_):
            amap.slave_for(SRAM_BASE + SRAM_SIZE)

    def test_wrap_burst_at_region_edge_stays_inside(self):
        """A WRAP16 burst whose block touches the region top never
        produces a beat outside the region: the wrap block is aligned to
        its own size, so all beats land within [block_base, block_end)."""
        amap = soc_map()
        block = 16 * 4
        top_block = SRAM_BASE + SRAM_SIZE - block
        # Start mid-block: beats wrap to the block base, not past the end.
        addrs = beat_addresses(top_block + 32, beats=16, size_bytes=4, wrapping=True)
        assert len(addrs) == 16
        assert min(addrs) == top_block
        assert max(addrs) == SRAM_BASE + SRAM_SIZE - 4
        assert all(amap.slave_for(a) == 1 for a in addrs)

    def test_incr_burst_across_adjacent_region_edge(self):
        """INCR beat addresses decode per beat: a burst laid across two
        adjacent regions routes its beats to different slaves (bus models
        prevent this by the 1 KB rule + aligned bases; the decoder itself
        must still answer consistently)."""
        amap = AddressMap()
        amap.add("lo", 0x0, 0x1000, 0)
        amap.add("hi", 0x1000, 0x1000, 1)
        addrs = beat_addresses(0x1000 - 8, beats=4, size_bytes=4, wrapping=False)
        routed = [amap.slave_for(a) for a in addrs]
        assert routed == [0, 0, 1, 1]

    def test_span_sums_regions(self):
        assert soc_map().span() == DDR_SIZE + SRAM_SIZE + APB_SIZE
        assert single_slave_map(1 << 20).span() == 1 << 20
