"""Committed fuzz repros must keep failing the way they were archived.

Every ``tests/data/repros/*.jsonl`` file is a shrunk minimal failure
the fuzzer once found.  Each must replay to the *same* failure
signature forever:

* a different signature means the archived bug morphed — re-triage;
* no failure at all means the bug was (possibly accidentally) fixed —
  delete or re-archive the file consciously, don't carry it silently.
"""

import glob
import os

import pytest

from repro.fuzz import load_repro, replay_repro

REPRO_DIR = os.path.join(os.path.dirname(__file__), "data", "repros")
REPRO_FILES = sorted(glob.glob(os.path.join(REPRO_DIR, "*.jsonl")))


def test_repros_are_committed():
    """The PR ships hand-picked shrunken repros; an empty directory
    means discovery is silently matching nothing."""
    assert len(REPRO_FILES) >= 2


@pytest.mark.parametrize(
    "path", REPRO_FILES, ids=[os.path.basename(p) for p in REPRO_FILES]
)
def test_repro_replays_to_archived_failure(path):
    repro = load_repro(path)
    assert repro.records, path
    observed = replay_repro(repro)
    assert observed is not None, (
        f"{os.path.basename(path)} no longer fails — the archived bug is "
        f"fixed or regressed into silence; re-triage and delete/re-archive"
    )
    assert observed.signature == repro.signature, (
        f"{os.path.basename(path)} now fails differently: archived "
        f"{repro.signature}, observed {observed.signature} ({observed.detail})"
    )
    assert observed.kind == repro.kind
