"""Tests for profiling statistics, monitors and reports."""

import pytest

from repro.core import build_tlm_platform
from repro.errors import ConfigError
from repro.profiling import (
    BusMonitor,
    Histogram,
    RunningStats,
    ThroughputWindow,
    bus_summary,
    filter_report,
    format_table,
    port_report,
)
from repro.traffic import table1_pattern_a, table1_pattern_c


class TestRunningStats:
    def test_mean_min_max(self):
        stats = RunningStats()
        for v in (4, 10, 1):
            stats.add(v)
        assert stats.mean == 5.0
        assert stats.minimum == 1 and stats.maximum == 10

    def test_empty_mean_is_zero(self):
        assert RunningStats().mean == 0.0

    def test_as_dict(self):
        stats = RunningStats()
        stats.add(3)
        assert stats.as_dict()["count"] == 1


class TestHistogram:
    def test_binning_and_overflow(self):
        hist = Histogram(bin_width=10, max_bins=2)
        hist.add(5)
        hist.add(15)
        hist.add(999)
        assert hist.overflow == 1
        assert [(lo, hi) for lo, hi, _ in hist.nonzero_bins()] == [(0, 10), (10, 20)]

    def test_percentile(self):
        hist = Histogram(bin_width=10, max_bins=10)
        for v in range(0, 100, 10):
            hist.add(v)
        assert hist.percentile(0.5) <= hist.percentile(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            Histogram().add(-1)


class TestThroughputWindow:
    def test_series_and_peak(self):
        window = ThroughputWindow(window_cycles=100)
        window.add(50, 400)
        window.add(150, 100)
        series = window.series()
        assert series == [(0, 4.0), (100, 1.0)]
        assert window.peak() == 4.0


class TestBusMonitor:
    def _run_monitored(self, workload):
        platform = build_tlm_platform(workload)
        monitor = BusMonitor()
        platform.bus.add_observer(monitor)
        result = platform.run()
        return platform, monitor, result

    def test_counts_match_result(self):
        _, monitor, result = self._run_monitored(table1_pattern_a(40))
        assert monitor.transactions == result.transactions
        assert monitor.bytes_moved == result.bytes_transferred

    def test_utilization_matches_engine(self):
        _, monitor, result = self._run_monitored(table1_pattern_a(40))
        assert monitor.utilization(result.cycles) == pytest.approx(
            result.utilization, abs=0.02
        )

    def test_port_profiles_cover_all_masters(self):
        platform, monitor, _ = self._run_monitored(table1_pattern_a(40))
        from repro.ahb.transaction import WRITE_BUFFER_MASTER

        masters = set(monitor.ports) - {WRITE_BUFFER_MASTER}
        assert masters == {0, 1, 2, 3}

    def test_contention_positive_under_load(self):
        _, monitor, _ = self._run_monitored(table1_pattern_a(40))
        assert monitor.average_contention() > 0

    def test_deadline_tracking_in_port_profile(self):
        _, monitor, _ = self._run_monitored(table1_pattern_c(30))
        video = monitor.port(0)
        assert video.deadline_hits + video.deadline_misses > 0


class TestProfileSmoke:
    def test_rtl_hotspot_profile_runs_clean(self, capsys):
        # `make profile MODELS=rtl` in-process: the event-driven kernel
        # must survive a cProfile pass over the exact bench workload
        # without tripping any internal assertion.  No perf numbers are
        # graded — this is a does-it-run gate for the profiling path.
        from benchmarks.profile_hotspots import main

        assert main(["--models", "rtl", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "== rtl: top 5 by cumulative time ==" in out
        assert "run_until" in out


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1

    def test_reports_render(self):
        platform = build_tlm_platform(table1_pattern_c(30))
        monitor = BusMonitor()
        platform.bus.add_observer(monitor)
        result = platform.run()
        summary = bus_summary(monitor, result.cycles)
        assert "utilization" in summary
        ports = port_report(monitor, names={0: "video0"})
        assert "video0" in ports and "write-buffer" in ports
        filters = filter_report(result.filter_stats)
        assert "tie-break" in filters
