"""Tests for method/thread process shells and the VCD tracer."""

import pytest

from repro.errors import SimulationError
from repro.kernel.cycle import CycleEngine
from repro.kernel.events import Event
from repro.kernel.process import (
    MethodProcess,
    ThreadProcess,
    WaitCycles,
    WaitEvent,
)
from repro.kernel.signal import Signal
from repro.kernel.simulator import Simulator
from repro.kernel.tracing import VcdTracer


class TestMethodProcess:
    def test_call_after_schedules(self):
        sim = Simulator()
        seen = []
        proc = MethodProcess(sim, "p", lambda p: seen.append(sim.now))
        proc.call_after(4)
        sim.run()
        assert seen == [4]
        assert proc.invocations == 1

    def test_self_rearming(self):
        sim = Simulator()
        seen = []

        def action(proc):
            seen.append(sim.now)
            if sim.now < 6:
                proc.call_after(2)

        MethodProcess(sim, "p", action).call_after(2)
        sim.run()
        assert seen == [2, 4, 6]

    def test_sensitize(self):
        sim = Simulator()
        event = Event()
        seen = []
        MethodProcess(sim, "p", lambda p: seen.append(1)).sensitize(event)
        event.notify()
        event.notify()
        assert seen == [1, 1]


class TestThreadProcess:
    def test_wait_cycles(self):
        sim = Simulator()
        seen = []

        def body():
            seen.append(sim.now)
            yield WaitCycles(5)
            seen.append(sim.now)

        thread = ThreadProcess(sim, "t", body())
        thread.start()
        sim.run()
        assert seen == [0, 5]
        assert thread.finished

    def test_wait_event(self):
        sim = Simulator()
        event = Event()
        seen = []

        def body():
            yield WaitEvent(event)
            seen.append(sim.now)

        ThreadProcess(sim, "t", body()).start()
        sim.schedule_at(9, event.notify)
        sim.run()
        assert seen == [9]

    def test_bad_yield_raises(self):
        sim = Simulator()

        def body():
            yield 42

        ThreadProcess(sim, "t", body()).start()
        with pytest.raises(SimulationError):
            sim.run()

    def test_resume_count(self):
        sim = Simulator()

        def body():
            yield WaitCycles(1)
            yield WaitCycles(1)

        thread = ThreadProcess(sim, "t", body())
        thread.start()
        sim.run()
        assert thread.resumes == 3  # initial + two wakes

    def test_negative_wait_rejected(self):
        with pytest.raises(SimulationError):
            WaitCycles(-1)


class TestVcdTracer:
    def _traced_engine(self):
        engine = CycleEngine()
        sig = Signal("count", width=8)
        engine.add_signal(sig)
        engine.add_sequential(lambda: sig.drive_next(sig.value + 1))
        tracer = VcdTracer()
        tracer.add_signals([sig])
        engine.add_cycle_hook(tracer.sample)
        return engine, tracer

    def test_header_and_changes(self):
        engine, tracer = self._traced_engine()
        engine.run(3)
        text = tracer.getvalue()
        assert "$enddefinitions" in text
        assert "$var wire 8" in text
        assert tracer.change_count >= 3

    def test_no_duplicate_emissions_for_static_signal(self):
        engine = CycleEngine()
        sig = Signal("static", width=8, reset=5)
        engine.add_signal(sig)
        engine.add_sequential(lambda: None)
        tracer = VcdTracer()
        tracer.add_signals([sig])
        engine.add_cycle_hook(tracer.sample)
        engine.run(5)
        assert tracer.change_count == 1  # initial dump only

    def test_cannot_add_after_start(self):
        engine, tracer = self._traced_engine()
        engine.run(1)
        with pytest.raises(RuntimeError):
            tracer.add_signals([Signal("late")])
