"""End-to-end tests for the method-based AHB+ TLM engine."""

import pytest

from repro.core import (
    AhbPlusConfig,
    QosSetting,
    build_plain_platform,
    build_tlm_platform,
)
from repro.core.platform import config_for_workload
from repro.errors import ConfigError
from repro.traffic import (
    bank_striped_workload,
    saturating_workload,
    single_master_workload,
    table1_pattern_a,
    table1_pattern_c,
    write_heavy_workload,
)

from dataclasses import replace


class TestMethodEngine:
    def test_single_master_completes_all_traffic(self):
        platform = build_tlm_platform(single_master_workload(40))
        result = platform.run()
        assert result.per_master_transactions == [40]
        assert platform.masters[0].done

    def test_multi_master_conservation(self):
        workload = table1_pattern_a(50)
        platform = build_tlm_platform(workload)
        result = platform.run()
        # Every issued transaction is served exactly once on the bus
        # (absorbed writes replay as drains).
        assert result.transactions == workload.total_transactions
        assert result.drained_writes == result.absorbed_writes

    def test_utilization_bounded(self):
        result = build_tlm_platform(table1_pattern_a(50)).run()
        assert 0.0 < result.utilization <= 1.0

    def test_pipelining_reduces_cycles(self):
        workload = table1_pattern_a(50)
        base = config_for_workload(workload)
        on = build_tlm_platform(workload, config=base).run()
        off = build_tlm_platform(
            workload, config=replace(base, request_pipelining=False)
        ).run()
        assert on.cycles < off.cycles
        assert on.pipelined_grants > 0 and off.pipelined_grants == 0

    def test_write_buffer_hides_write_latency(self):
        workload = write_heavy_workload(60)
        base = config_for_workload(workload)
        with_buffer = build_tlm_platform(workload, config=base)
        r_on = with_buffer.run()
        without = build_tlm_platform(
            workload, config=replace(base, write_buffer_enabled=False)
        )
        r_off = without.run()
        assert r_on.absorbed_writes > 0 and r_off.absorbed_writes == 0

        def mean_write_latency(platform):
            writes = [
                t
                for m in platform.masters
                for t in m.completed
                if t.is_write
            ]
            return sum(t.finished_at - t.issued_at for t in writes) / len(writes)

        assert mean_write_latency(with_buffer) < mean_write_latency(without)

    def test_posted_write_then_read_sees_fresh_data(self):
        # RAW hazard: the hazard filter must drain the buffer before a
        # read of the same address is served.
        workload = write_heavy_workload(60)
        platform = build_tlm_platform(workload)
        platform.run()
        for master in platform.masters:
            last_written = {}
            for txn in master.completed:
                addrs = range(txn.addr, txn.addr + txn.total_bytes, txn.size_bytes)
                if txn.is_write:
                    for a, v in zip(addrs, txn.data):
                        last_written[a] = v
                else:
                    for a, v in zip(addrs, txn.data):
                        if a in last_written:
                            assert v == last_written[a]

    def test_qos_deadlines_met_under_saturation(self):
        workload = saturating_workload(40)
        result = build_tlm_platform(workload).run()
        assert result.rt_deadline_misses == 0
        assert result.rt_deadline_hits > 0

    def test_bi_disabled_means_no_preparation(self):
        workload = bank_striped_workload(60)
        cfg = replace(config_for_workload(workload), bus_interface_enabled=False)
        platform = build_tlm_platform(workload, config=cfg)
        result = platform.run()
        assert result.bi_next_info == 0
        assert platform.ddrc.prepared_banks == 0

    def test_observers_see_all_transactions(self):
        platform = build_tlm_platform(table1_pattern_a(30))
        seen = []
        platform.bus.add_observer(lambda txn, g, s, f: seen.append(txn.uid))
        result = platform.run()
        assert len(seen) == result.transactions

    def test_max_cycles_truncates(self):
        platform = build_tlm_platform(table1_pattern_a(100))
        result = platform.run(max_cycles=200)
        assert result.cycles <= 400  # a transfer may straddle the limit

    def test_filter_stats_present(self):
        result = build_tlm_platform(table1_pattern_c(30)).run()
        assert set(result.filter_stats) == {
            "request",
            "hazard",
            "urgency",
            "real-time",
            "pressure",
            "bank",
            "tie-break",
        }

    def test_plain_platform_is_slower_than_ahbplus(self):
        workload = table1_pattern_a(60)
        plain = build_plain_platform(workload).run()
        ahbp = build_tlm_platform(workload).run()
        assert ahbp.cycles < plain.cycles


class TestPlatformBuilders:
    def test_config_master_count_mismatch(self):
        workload = table1_pattern_a(10)
        with pytest.raises(ConfigError):
            build_tlm_platform(workload, config=AhbPlusConfig(num_masters=2))

    def test_workload_qos_merged_into_config(self):
        workload = table1_pattern_c(10)
        platform = build_tlm_platform(workload)
        assert platform.config.qos[0].real_time
        assert platform.bus.qos.is_real_time(0)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            build_tlm_platform(table1_pattern_a(10), engine="fpga")

    def test_without_extensions(self):
        cfg = AhbPlusConfig(num_masters=4).without_extensions()
        assert not cfg.write_buffer_enabled
        assert not cfg.request_pipelining
        assert not cfg.bus_interface_enabled
        assert len(cfg.disabled_filters) == 6

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AhbPlusConfig(bus_width_bytes=3)
        with pytest.raises(ConfigError):
            AhbPlusConfig(tie_break="coinflip")
        with pytest.raises(ConfigError):
            AhbPlusConfig(disabled_filters=("tie-break",))
        with pytest.raises(ConfigError):
            AhbPlusConfig(num_masters=2, qos={5: QosSetting(True, 10)})
