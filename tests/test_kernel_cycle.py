"""Tests for the 2-step cycle engine."""

import pytest

from repro.errors import CombinationalLoopError, SimulationError
from repro.kernel.cycle import CycleEngine
from repro.kernel.signal import Signal


def make_counter_engine():
    """A registered counter plus a combinational 'is even' decode."""
    engine = CycleEngine()
    count = Signal("count", width=16)
    even = Signal("even")
    engine.add_signal(count, even)
    engine.add_combinational(lambda: even.drive(count.value % 2 == 0))
    engine.add_sequential(lambda: count.drive_next(count.value + 1))
    return engine, count, even


class TestCycleEngine:
    def test_sequential_updates_once_per_cycle(self):
        engine, count, _ = make_counter_engine()
        engine.run(5)
        assert count.value == 5
        assert engine.cycle == 5

    def test_combinational_reflects_registered_state_same_cycle(self):
        engine, count, even = make_counter_engine()
        engine.step()
        # count committed to 1; the post-commit settle updated `even`.
        assert count.value == 1
        assert even.value == 0

    def test_two_step_registers_swap_without_race(self):
        engine = CycleEngine()
        a = Signal("a", reset=0)
        b = Signal("b", reset=1)
        engine.add_signal(a, b)

        def swap():
            a.drive_next(b.value)
            b.drive_next(a.value)

        engine.add_sequential(swap)
        engine.step()
        assert (a.value, b.value) == (1, 0)
        engine.step()
        assert (a.value, b.value) == (0, 1)

    def test_combinational_loop_detected(self):
        engine = CycleEngine()
        a = Signal("a")
        b = Signal("b")
        engine.add_signal(a, b)
        engine.add_combinational(lambda: a.drive(1 - b.value))
        engine.add_combinational(lambda: b.drive(a.value))
        with pytest.raises(CombinationalLoopError):
            engine.step()

    def test_comb_chain_settles(self):
        engine = CycleEngine()
        stages = [Signal(f"s{i}", width=8) for i in range(5)]
        engine.add_signal(*stages)
        for i in range(1, 5):
            engine.add_combinational(
                lambda i=i: stages[i].drive(stages[i - 1].value + 1)
            )
        engine.add_sequential(lambda: stages[0].drive_next(stages[0].value + 10))
        engine.step()
        assert [sig.value for sig in stages] == [10, 11, 12, 13, 14]

    def test_run_negative_raises(self):
        with pytest.raises(SimulationError):
            CycleEngine().run(-1)

    def test_run_until_predicate(self):
        engine, count, _ = make_counter_engine()
        engine.run_until(lambda: count.value >= 7)
        assert count.value == 7

    def test_run_until_timeout(self):
        engine, _, _ = make_counter_engine()
        with pytest.raises(SimulationError):
            engine.run_until(lambda: False, max_cycles=10)

    def test_cycle_hooks(self):
        engine, _, _ = make_counter_engine()
        cycles = []
        engine.add_cycle_hook(cycles.append)
        engine.run(3)
        assert cycles == [1, 2, 3]

    def test_evaluate_passes_counted(self):
        engine, _, _ = make_counter_engine()
        engine.run(2)
        assert engine.evaluate_passes >= 4
