"""The legacy one-call builders must warn but keep working.

PR 2 turned ``build_tlm_platform`` / ``build_plain_platform`` /
``build_rtl_platform`` into thin shims over the spec API; this suite
asserts they now say so out loud (``DeprecationWarning``) while their
output stays usable — the golden-trace suite separately pins that the
output is bit-identical.
"""

import warnings

import pytest

from repro.core import build_plain_platform, build_tlm_platform
from repro.rtl import build_rtl_platform
from repro.traffic import single_master_workload


@pytest.mark.parametrize(
    "builder",
    [build_tlm_platform, build_plain_platform, build_rtl_platform],
    ids=["tlm", "plain", "rtl"],
)
def test_shim_emits_deprecation_warning(builder):
    with pytest.warns(DeprecationWarning, match="PlatformBuilder"):
        platform = builder(single_master_workload(5))
    # The shim still works: callers are warned, not broken.
    result = platform.run()
    assert result.transactions == 5


def test_spec_api_is_warning_free():
    from repro.system import PlatformBuilder, paper_topology

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        platform = PlatformBuilder(
            paper_topology(workload=single_master_workload(5))
        ).build("tlm")
        assert platform.run().transactions == 5
