"""Crash-tolerant sweeps: error rows instead of dead grids.

Pins the satellite acceptance criterion: a sweep containing a point
that raises (or, on the process backend, times out) completes under
``on_error="record"`` with an error row in that point's grid slot and
real records everywhere else — and still fails fast under the default
``on_error="raise"``.
"""

import time

import pytest

import repro.core  # noqa: F401  (anchor package import order)
from repro.errors import ConfigError, SimulationError
from repro.exec import ON_ERROR, RunRecord, SweepRunner
from repro.system import paper_topology, sweep
from repro.traffic import saturating_workload


def _engine_grid(transactions=12):
    spec = paper_topology(workload=saturating_workload(transactions))
    return sweep(spec, axis="engine", values=("tlm", "rtl", "plain"))


def _starve_rtl(point):
    # 3 cycles cannot drain anything: the RTL point hits its ceiling
    # and raises SimulationError; the other engines run unbounded.
    return 3 if point.value == "rtl" else None


class TestKnobValidation:
    def test_on_error_policy_names(self):
        assert ON_ERROR == ("raise", "record")
        with pytest.raises(ConfigError, match="on_error"):
            SweepRunner(on_error="explode")

    def test_timeout_needs_process_backend(self):
        with pytest.raises(ConfigError, match="process backend"):
            SweepRunner(timeout=5.0)
        with pytest.raises(ConfigError, match="timeout"):
            SweepRunner(backend="process", timeout=0)

    def test_record_policy_composes_with_backends(self):
        SweepRunner(on_error="record")
        SweepRunner(backend="process", on_error="record", timeout=10.0)


class TestRecordPolicy:
    def test_crashing_point_yields_error_row_in_grid_slot(self):
        grid = _engine_grid()
        records = SweepRunner(on_error="record").run(
            grid, max_cycles=_starve_rtl
        )
        assert len(records) == len(grid)
        by_value = {record.engine: record for record in records}
        bad = by_value["rtl"]
        assert bad.failed
        assert "SimulationError" in bad.error
        assert bad.cycles == 0 and bad.transactions == 0
        for good in (by_value["tlm"], by_value["plain"]):
            assert not good.failed and good.error == ""
            assert good.transactions > 0

    def test_raise_policy_propagates(self):
        grid = _engine_grid()
        with pytest.raises(SimulationError):
            SweepRunner().run(grid, max_cycles=_starve_rtl)

    def test_error_row_round_trips(self):
        grid = _engine_grid()
        records = SweepRunner(on_error="record").run(
            grid, max_cycles=_starve_rtl
        )
        bad = next(record for record in records if record.failed)
        clone = RunRecord.from_dict(bad.to_dict())
        assert clone == bad
        assert clone.failed

    def test_process_backend_records_errors_too(self):
        grid = _engine_grid()
        serial = SweepRunner(on_error="record").run(
            grid, max_cycles=_starve_rtl
        )
        process = SweepRunner(backend="process", on_error="record").run(
            grid, max_cycles=_starve_rtl
        )
        assert process == serial


def _stall_plain(point, platform, result):
    """Module-level collector (pickled by reference) that wedges the
    plain-engine point, simulating a hung worker deterministically."""
    if point.value == "plain":
        time.sleep(60)
    return {}


class TestTimeouts:
    def test_stuck_point_becomes_timeout_row(self):
        grid = _engine_grid(8)
        records = SweepRunner(
            backend="process",
            workers=2,
            on_error="record",
            timeout=2.0,
        ).run(grid, collect=_stall_plain)
        assert len(records) == len(grid)
        by_engine = {record.engine: record for record in records}
        stuck = by_engine["plain"]
        assert stuck.failed
        assert "timeout" in stuck.error
        for engine in ("tlm", "rtl"):
            assert not by_engine[engine].failed
            assert by_engine[engine].transactions > 0

    def test_on_result_streams_timeout_rows_in_grid_order(self):
        """The deadline pool path fires ``on_result`` for every slot —
        wedged points surface as timeout rows, in grid order, so a
        streaming consumer (the sweep server) never stalls on them."""
        grid = _engine_grid(8)
        seen = []
        records = SweepRunner(
            backend="process",
            workers=2,
            on_error="record",
            timeout=2.0,
        ).run(
            grid,
            collect=_stall_plain,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert [i for i, _ in seen] == list(range(len(grid)))
        assert [r for _, r in seen] == records
        streamed_stuck = next(r for _, r in seen if r.engine == "plain")
        assert streamed_stuck.failed and "timeout" in streamed_stuck.error

    def test_timeout_raise_policy(self):
        spec = paper_topology(workload=saturating_workload(8))
        grid = sweep(spec, axis="engine", values=("plain",))
        with pytest.raises(SimulationError, match="timeout"):
            SweepRunner(backend="process", workers=1, timeout=1.0).run(
                grid, collect=_stall_plain
            )
