"""Tests for the analytic bank timeline and the memory model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ddr.commands import BankAddress
from repro.ddr.memory import MemoryModel
from repro.ddr.timeline import BankTimeline
from repro.ddr.timing import DDR_TEST
from repro.errors import MemoryError_

T = DDR_TEST


class TestBankTimeline:
    def test_first_access_pays_act_plus_cas(self):
        timeline = BankTimeline(T)
        plan = timeline.schedule_access(BankAddress(0, 1, 0), False, 4, 10)
        # ACT at 10, CAS at 10+tRCD, data CL later.
        assert plan.cas_at == 10 + T.t_rcd
        assert plan.first_data == plan.cas_at + T.cas_latency
        assert plan.finish == plan.first_data + 3
        assert not plan.row_hit

    def test_row_hit_skips_row_commands(self):
        timeline = BankTimeline(T)
        first = timeline.schedule_access(BankAddress(0, 1, 0), False, 4, 10)
        second = timeline.schedule_access(
            BankAddress(0, 1, 4), False, 4, first.finish + 1
        )
        assert second.row_hit
        assert second.cas_at == first.finish + 1

    def test_row_conflict_pays_precharge(self):
        timeline = BankTimeline(T)
        first = timeline.schedule_access(BankAddress(0, 1, 0), False, 4, 0)
        second = timeline.schedule_access(
            BankAddress(0, 2, 0), False, 4, first.finish + 1
        )
        assert not second.row_hit
        # PRE cannot start before the first burst's final beat + 1.
        assert second.cas_at >= first.finish + 1 + T.t_rp + T.t_rcd

    def test_write_recovery_delays_conflict(self):
        timeline = BankTimeline(T)
        first = timeline.schedule_access(BankAddress(0, 1, 0), True, 4, 0)
        second = timeline.schedule_access(
            BankAddress(0, 2, 0), False, 1, first.finish + 1
        )
        assert second.cas_at >= first.finish + T.t_wr + T.t_rp + T.t_rcd

    def test_prepare_overlaps_activation(self):
        timeline = BankTimeline(T)
        first = timeline.schedule_access(BankAddress(0, 1, 0), False, 8, 0)
        # BI prepares bank 1 while bank 0 streams.
        assert timeline.prepare(BankAddress(1, 3, 0), cycle=first.cas_at + 1)
        second = timeline.schedule_access(
            BankAddress(1, 3, 0), False, 4, first.finish
        )
        assert second.row_hit
        # Data continues seamlessly after the previous burst.
        assert second.first_data <= first.finish + 1 + T.cas_latency

    def test_prepare_noop_when_row_open(self):
        timeline = BankTimeline(T)
        timeline.schedule_access(BankAddress(0, 1, 0), False, 1, 0)
        assert timeline.prepare(BankAddress(0, 1, 0), 50) is False

    def test_data_bus_is_exclusive(self):
        timeline = BankTimeline(T)
        a = timeline.schedule_access(BankAddress(0, 1, 0), False, 8, 0)
        b = timeline.schedule_access(BankAddress(1, 1, 0), False, 8, 0)
        assert b.first_data > a.finish

    def test_close_all_resets_rows(self):
        timeline = BankTimeline(T)
        timeline.schedule_access(BankAddress(0, 1, 0), False, 1, 0)
        ready = timeline.close_all(100)
        assert ready >= 100 + T.t_rp + T.t_rfc
        assert all(lane.open_row is None for lane in timeline.banks)

    def test_idle_banks_bitmap(self):
        timeline = BankTimeline(T)
        assert timeline.idle_banks(0) == 0b1111
        timeline.schedule_access(BankAddress(2, 1, 0), False, 1, 0)
        assert timeline.idle_banks(50) == 0b1011

    def test_access_score(self):
        timeline = BankTimeline(T)
        timeline.schedule_access(BankAddress(0, 1, 0), False, 1, 0)
        assert timeline.access_score(BankAddress(0, 1, 0), 50) == 0
        assert timeline.access_score(BankAddress(1, 0, 0), 50) == 1
        assert timeline.access_score(BankAddress(0, 9, 0), 50) == 2

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # bank
                st.integers(min_value=0, max_value=7),   # row
                st.booleans(),                           # write
                st.integers(min_value=1, max_value=16),  # beats
            ),
            min_size=1,
            max_size=24,
        )
    )
    def test_data_bus_never_overlaps(self, accesses):
        timeline = BankTimeline(T)
        cycle = 0
        windows = []
        for bank, row, write, beats in accesses:
            plan = timeline.schedule_access(
                BankAddress(bank, row, 0), write, beats, cycle
            )
            assert plan.first_data >= cycle
            assert plan.finish == plan.first_data + beats - 1
            windows.append((plan.first_data, plan.finish))
            cycle = plan.finish + 1
        for (s1, f1), (s2, _f2) in zip(windows, windows[1:]):
            assert s2 > f1


class TestMemoryModel:
    def test_roundtrip(self):
        mem = MemoryModel()
        mem.write(0x100, 4, 0xDEADBEEF)
        assert mem.read(0x100, 4) == 0xDEADBEEF

    def test_unwritten_reads_zero(self):
        assert MemoryModel().read(0x40, 4) == 0

    def test_partial_overlap_little_endian(self):
        mem = MemoryModel()
        mem.write(0x10, 4, 0x11223344)
        assert mem.read(0x12, 1) == 0x22

    def test_oversized_value_rejected(self):
        with pytest.raises(MemoryError_):
            MemoryModel().write(0, 2, 0x12345)

    def test_negative_address_rejected(self):
        with pytest.raises(MemoryError_):
            MemoryModel().read(-4, 4)

    def test_equality_and_difference(self):
        a, b = MemoryModel(), MemoryModel()
        a.write(0, 4, 5)
        b.write(0, 4, 5)
        assert a.equal_contents(b)
        b.write(8, 1, 9)
        assert not a.equal_contents(b)
        addr, mine, theirs = a.first_difference(b)
        assert (addr, mine, theirs) == (8, 0, 9)

    def test_zero_equals_unwritten(self):
        a, b = MemoryModel(), MemoryModel()
        a.write(0, 4, 0)
        assert a.equal_contents(b)

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=1000).map(lambda w: w * 4),
            st.integers(min_value=0, max_value=2**32 - 1),
            max_size=30,
        )
    )
    def test_many_writes_roundtrip(self, writes):
        mem = MemoryModel()
        for addr, value in writes.items():
            mem.write(addr, 4, value)
        for addr, value in writes.items():
            assert mem.read(addr, 4) == value


class TestWordFastPath:
    """The word-keyed store must be observably identical to byte-only."""

    def test_byte_write_into_word_entry(self):
        mem = MemoryModel()
        mem.write(0x10, 4, 0x11223344)  # word fast path
        mem.write(0x11, 1, 0xAA)  # spills the word, patches one byte
        assert mem.read(0x10, 4) == 0x1122AA44
        assert mem.read(0x11, 1) == 0xAA
        assert mem.touched_bytes() == 4

    def test_word_write_over_byte_entries(self):
        mem = MemoryModel()
        mem.write(0x20, 1, 0x55)
        mem.write(0x22, 2, 0xBEEF)
        mem.write(0x20, 4, 0xDEADBEEF)  # evicts all byte residue
        assert mem.read(0x20, 4) == 0xDEADBEEF
        assert mem.read(0x21, 1) == 0xBE
        assert mem.touched_bytes() == 4

    def test_unaligned_word_read_merges_stores(self):
        mem = MemoryModel()
        mem.write(0x0, 4, 0x44332211)
        mem.write(0x4, 4, 0x88776655)
        assert mem.read(0x2, 4) == 0x66554433

    def test_wide_access_spans_words(self):
        mem = MemoryModel()
        mem.write(0x8, 8, 0x1122334455667788)
        assert mem.read(0x8, 4) == 0x55667788
        assert mem.read(0xC, 4) == 0x11223344
        assert mem.read(0x8, 8) == 0x1122334455667788

    def test_equal_contents_across_store_shapes(self):
        word_wise, byte_wise = MemoryModel(), MemoryModel()
        word_wise.write(0x40, 4, 0xCAFEBABE)
        for i, byte in enumerate((0xBE, 0xBA, 0xFE, 0xCA)):
            byte_wise.write(0x40 + i, 1, byte)
        assert word_wise.equal_contents(byte_wise)
        assert byte_wise.equal_contents(word_wise)
        byte_wise.write(0x41, 1, 0x00)
        assert not word_wise.equal_contents(byte_wise)
        addr, mine, theirs = word_wise.first_difference(byte_wise)
        assert (addr, mine, theirs) == (0x41, 0xBA, 0x00)

    def test_items_merge_in_address_order(self):
        mem = MemoryModel()
        mem.write(0x8, 4, 0x0A0B0C0D)
        mem.write(0x3, 1, 0x99)
        assert list(mem.items()) == [
            (0x3, 0x99),
            (0x8, 0x0D),
            (0x9, 0x0C),
            (0xA, 0x0B),
            (0xB, 0x0A),
        ]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=64),
                st.sampled_from([1, 2, 4]),
                st.integers(min_value=0, max_value=2**32 - 1),
            ),
            max_size=40,
        )
    )
    def test_matches_byte_reference(self, ops):
        """Random interleaved sizes: model vs a plain byte-dict oracle."""
        mem = MemoryModel()
        oracle = {}
        for addr, size, value in ops:
            addr -= addr % size  # keep accesses aligned like bus traffic
            value &= (1 << (8 * size)) - 1
            mem.write(addr, size, value)
            for i in range(size):
                oracle[addr + i] = (value >> (8 * i)) & 0xFF
        for addr in range(0, 72):
            assert mem.read(addr, 1) == oracle.get(addr, 0)
        assert mem.touched_bytes() == len(oracle)
