"""The structure-of-arrays lockstep sweep backend.

The load-bearing guarantee mirrors the process backend's: for any grid,
``backend="batch"`` returns records *equal* to ``backend="serial"`` —
same counters, same order, same error rows — with only wall time (which
record equality excludes) differing.  Eligible single-master TLM points
run through one numpy program; everything else transparently falls back
to per-point serial execution, so the guarantee holds grid-wide, not
just for the fast path.
"""

import random
from dataclasses import replace

import pytest

import repro.core  # noqa: F401  (anchor package import order)
from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.core.qos import QosSetting
from repro.ddr.controller import DdrControllerTlm
from repro.ddr.timing import DdrTiming
from repro.errors import ConfigError, MemoryError_
from repro.exec import HAVE_NUMPY, SweepRunner, batch_precheck
from repro.exec.batch import BATCHED, FELL_BACK, _decode_segments
from repro.system import paper_topology, scenario, sweep
from repro.traffic import single_master_workload
from repro.traffic.faults import FaultSpec
from repro.traffic.patterns import TrafficPattern
from repro.traffic.workloads import MasterSpec, Workload

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="batch backend needs numpy"
)


def _seed_grid(transactions=60, seeds=6):
    spec = paper_topology(workload=single_master_workload(transactions))
    return sweep(spec, axis="seed", values=range(seeds))


def _rt_workload(transactions=60):
    pattern = TrafficPattern(
        name="rt",
        read_fraction=0.5,
        burst_mix=((4, 0.5), (8, 0.5)),
        think_range=(0, 4),
        base_addr=0,
        addr_span=1 << 20,
        period=40,
        deadline_offset=25,
    )
    master = MasterSpec(
        name="rt0",
        pattern=pattern,
        transactions=transactions,
        qos=QosSetting(real_time=True, objective_cycles=30),
    )
    return Workload(name="rt-single", masters=(master,), seed=7)


def _check(grid, expect=None, run_kwargs=None, **runner_kwargs):
    run_kwargs = run_kwargs or {}
    serial = SweepRunner(backend="serial", **runner_kwargs).run(
        grid, **run_kwargs
    )
    runner = SweepRunner(backend="batch", **runner_kwargs)
    batch = runner.run(grid, **run_kwargs)
    assert serial == batch
    if expect is not None:
        assert set(runner.dispatch_log) == expect
    return runner


class TestBatchEqualsSerial:
    def test_seed_axis_grid_is_lockstepped(self):
        _check(_seed_grid(), expect={BATCHED})

    def test_qos_deadline_grid(self):
        grid = sweep(
            paper_topology(workload=_rt_workload()),
            axis="seed",
            values=range(6),
        )
        _check(grid, expect={BATCHED})

    def test_heterogeneous_axes_stay_eligible(self):
        spec = paper_topology(workload=single_master_workload(40))
        grid = (
            sweep(spec, axis="write_buffer_depth", values=(1, 2, 8))
            + sweep(spec, axis="arbitration_cycles", values=(0, 1, 3))
            + sweep(spec, axis="refresh_enabled", values=(False, True))
            + sweep(
                spec,
                axis="ddr_timing",
                values=(
                    DdrTiming(),
                    DdrTiming(num_banks=8, cas_latency=5, t_rcd=5, t_rp=5),
                ),
                labels=("base", "8-bank"),
            )
        )
        _check(grid, expect={BATCHED})

    def test_max_cycles_ceiling(self):
        for ceiling in (900, 3, 1):
            _check(
                _seed_grid(seeds=3),
                expect={BATCHED},
                run_kwargs={"max_cycles": ceiling},
            )

    def test_repeats_keep_counters_identical(self):
        once = SweepRunner(backend="batch").run(_seed_grid(seeds=3))
        thrice = SweepRunner(backend="batch", repeats=3).run(
            _seed_grid(seeds=3)
        )
        assert once == thrice


class TestBatchFallback:
    def test_multi_master_grid_falls_back(self):
        grid = sweep(paper_topology(), axis="seed", values=range(2))
        _check(grid, expect={FELL_BACK})

    def test_faulted_workload_falls_back(self):
        workload = replace(
            single_master_workload(30),
            fault=FaultSpec(seed=11, error_rate=0.2, retry_rate=0.2),
        )
        grid = sweep(
            paper_topology(workload=workload), axis="seed", values=range(3)
        )
        _check(grid, expect={FELL_BACK})

    def test_mixed_engine_grid_splits(self):
        spec = paper_topology(workload=single_master_workload(40))
        grid = sweep(spec, axis="engine", values=("tlm", "plain"))
        runner = _check(grid)
        assert runner.dispatch_log == [BATCHED, FELL_BACK]

    def test_crash_rows_recorded_identically(self):
        bad_pattern = TrafficPattern(
            name="bad",
            read_fraction=1.0,
            burst_mix=((4, 1.0),),
            think_range=(0, 0),
            base_addr=1 << 30,  # far outside the DDR geometry
            addr_span=1 << 10,
        )
        bad = Workload(
            name="bad-addr",
            masters=(MasterSpec(name="m0", pattern=bad_pattern, transactions=5),),
            seed=1,
        )
        grid = _seed_grid(transactions=30, seeds=2) + sweep(
            paper_topology(workload=bad), axis="seed", values=(0,)
        )
        serial = SweepRunner(backend="serial", on_error="record").run(grid)
        runner = SweepRunner(backend="batch", on_error="record")
        batch = runner.run(grid)
        assert serial == batch
        assert batch[-1].error  # the bad point really crashed...
        assert runner.dispatch_log == [BATCHED, BATCHED, FELL_BACK]

    def test_crash_raises_under_raise_policy(self):
        bad_pattern = TrafficPattern(
            name="bad",
            read_fraction=1.0,
            burst_mix=((4, 1.0),),
            think_range=(0, 0),
            base_addr=1 << 30,
            addr_span=1 << 10,
        )
        bad = Workload(
            name="bad-addr",
            masters=(MasterSpec(name="m0", pattern=bad_pattern, transactions=5),),
            seed=1,
        )
        grid = sweep(paper_topology(workload=bad), axis="seed", values=(0,))
        with pytest.raises(MemoryError_):
            SweepRunner(backend="serial").run(grid)
        with pytest.raises(MemoryError_):
            SweepRunner(backend="batch").run(grid)

    def test_numpy_gate_degrades_to_serial(self, monkeypatch):
        import repro.exec.batch as batch_mod

        monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
        runner = SweepRunner(backend="batch")
        records = runner.run(_seed_grid(seeds=2))
        assert set(runner.dispatch_log) == {FELL_BACK}
        assert records == SweepRunner(backend="serial").run(_seed_grid(seeds=2))


class TestBatchRunnerSurface:
    def test_precheck_matches_dispatch(self):
        spec = paper_topology(workload=single_master_workload(30))
        eligible = sweep(spec, axis="seed", values=(0,))
        ineligible = sweep(paper_topology(), axis="seed", values=(0,))
        assert batch_precheck(eligible[0])
        assert not batch_precheck(ineligible[0])
        multi_slave = sweep(
            scenario("multi-slave-soc"), axis="seed", values=(0,)
        )
        assert not batch_precheck(multi_slave[0])

    def test_on_result_streams_in_grid_order(self):
        grid = _seed_grid(seeds=4)
        seen = []
        records = SweepRunner(backend="batch").run(
            grid, on_result=lambda i, r: seen.append((i, r))
        )
        assert [i for i, _ in seen] == list(range(len(grid)))
        assert [r for _, r in seen] == records

    def test_process_only_knobs_rejected(self):
        from repro.exec import shared_pool

        with pytest.raises(ConfigError):
            SweepRunner(backend="batch", pool=shared_pool(1))
        with pytest.raises(ConfigError):
            SweepRunner(backend="batch", timeout=5.0)

    def test_collect_is_serial_only(self):
        # Custom collectors need a live platform; the batch backend
        # must route those points to the serial path, not mis-serve them.
        grid = _seed_grid(seeds=2)
        runner = SweepRunner(backend="batch")
        records = runner.run(
            grid, collect=lambda point, platform, result: {"probe": 1.0}
        )
        assert set(runner.dispatch_log) == {FELL_BACK}
        assert all(r.metric("probe") == 1.0 for r in records)


class TestSegmentDecode:
    """The arithmetic burst split must match the per-beat reference."""

    def test_random_geometries_match_reference(self):
        rng = random.Random(1234)
        checked = 0
        for _ in range(2000):
            col_bits = rng.choice([1, 2, 4, 8, 10])
            num_banks = rng.choice([1, 2, 4, 8])
            row_bits = rng.choice([2, 4, 8, 13])
            bus_bytes = rng.choice([1, 2, 4, 8, 16])
            timing = DdrTiming(
                num_banks=num_banks, col_bits=col_bits, row_bits=row_bits
            )
            ddrc = DdrControllerTlm(timing=timing, bus_bytes=bus_bytes)
            size = min(rng.choice([1, 2, 4, 8, 16]), bus_bytes)
            wrapping = rng.random() < 0.4
            beats = rng.choice([4, 8, 16]) if wrapping else rng.randint(1, 16)
            span = (1 << timing._row_shift) * bus_bytes * (1 << row_bits)
            addr = rng.randrange(0, span + 4096)
            addr -= addr % size
            try:
                txn = Transaction(
                    master=0,
                    kind=AccessKind.READ,
                    addr=addr,
                    beats=beats,
                    size_bytes=size,
                    wrapping=wrapping,
                )
            except Exception:
                continue  # illegal burst shape; nothing to compare
            fast = _decode_segments(txn, timing, bus_bytes)
            if fast is None:
                continue  # fast path declined; the slow path serves it
            reference = [
                (baddr.bank, baddr.row, len(addrs))
                for baddr, addrs in ddrc._segments(txn)
            ]
            assert fast == reference
            checked += 1
        assert checked > 500  # the fast path really covered most draws

    def test_wrap_burst_is_single_segment(self):
        timing = DdrTiming()
        txn = Transaction(
            master=0,
            kind=AccessKind.READ,
            addr=0x1010,
            beats=8,
            size_bytes=4,
            wrapping=True,
        )
        assert _decode_segments(txn, timing, 4) == [
            (baddr.bank, baddr.row, len(addrs))
            for baddr, addrs in DdrControllerTlm(
                timing=timing, bus_bytes=4
            )._segments(txn)
        ]

    def test_out_of_range_address_declines(self):
        timing = DdrTiming()
        txn = Transaction(
            master=0, kind=AccessKind.READ, addr=1 << 40, beats=4, size_bytes=4
        )
        assert _decode_segments(txn, timing, 4) is None
