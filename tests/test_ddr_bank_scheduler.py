"""Tests for the bank FSM and the cycle-level command scheduler."""

import pytest

from repro.ddr.bank import BankFsm, BankState
from repro.ddr.commands import BankAddress, DdrCommand
from repro.ddr.scheduler import CommandScheduler, PendingAccess
from repro.ddr.timing import DDR_TEST
from repro.errors import SimulationError


def ticked(bank, cycles):
    for _ in range(cycles):
        bank.tick()
    return bank


class TestBankFsm:
    def test_activate_takes_trcd(self):
        bank = BankFsm(0, DDR_TEST)
        bank.activate(row=3)
        assert bank.state is BankState.ACTIVATING
        ticked(bank, DDR_TEST.t_rcd)
        assert bank.state is BankState.ACTIVE
        assert bank.can_cas(3)
        assert not bank.can_cas(4)

    def test_precharge_blocked_by_tras(self):
        bank = BankFsm(0, DDR_TEST)
        bank.activate(row=1)
        ticked(bank, DDR_TEST.t_rcd)
        assert not bank.can_precharge()
        ticked(bank, DDR_TEST.t_ras - DDR_TEST.t_rcd)
        assert bank.can_precharge()

    def test_write_recovery_blocks_precharge(self):
        bank = BankFsm(0, DDR_TEST)
        bank.activate(row=1)
        ticked(bank, DDR_TEST.t_ras)
        bank.note_cas(is_write=True)
        assert not bank.can_precharge()
        ticked(bank, DDR_TEST.t_wr)
        assert bank.can_precharge()

    def test_note_write_beat_rearms_recovery(self):
        bank = BankFsm(0, DDR_TEST)
        bank.activate(row=1)
        ticked(bank, DDR_TEST.t_ras)
        bank.note_cas(is_write=True)
        ticked(bank, DDR_TEST.t_wr - 1)
        bank.note_write_beat()
        assert not bank.can_precharge()

    def test_precharge_then_idle(self):
        bank = BankFsm(0, DDR_TEST)
        bank.activate(row=1)
        ticked(bank, DDR_TEST.t_ras)
        bank.precharge()
        assert bank.open_row is None
        ticked(bank, DDR_TEST.t_rp)
        assert bank.state is BankState.IDLE

    def test_illegal_commands_raise(self):
        bank = BankFsm(0, DDR_TEST)
        with pytest.raises(SimulationError):
            bank.precharge()
        bank.activate(row=0)
        with pytest.raises(SimulationError):
            bank.activate(row=1)
        with pytest.raises(SimulationError):
            bank.refresh()

    def test_refresh_cycle(self):
        bank = BankFsm(0, DDR_TEST)
        bank.refresh()
        assert bank.state is BankState.REFRESHING
        ticked(bank, DDR_TEST.t_rfc)
        assert bank.state is BankState.IDLE


def make_sched():
    banks = [BankFsm(i, DDR_TEST) for i in range(DDR_TEST.num_banks)]
    return CommandScheduler(DDR_TEST, banks), banks


def access(bank=0, row=0, col=0, write=False, beats=4, uid=1):
    return PendingAccess(
        baddr=BankAddress(bank, row, col), is_write=write, beats=beats, uid=uid
    )


class TestCommandScheduler:
    def run_until_cas(self, sched, limit=50):
        for cycle in range(limit):
            decision = sched.decide(refresh_forced=False, data_path_free=True)
            sched.tick()
            if decision.command in (DdrCommand.READ, DdrCommand.WRITE):
                return cycle, decision
        pytest.fail("no CAS issued")

    def test_activate_then_cas(self):
        sched, _ = make_sched()
        sched.enqueue(access())
        cycle, decision = self.run_until_cas(sched)
        assert decision.command is DdrCommand.READ
        # ACT at cycle 0, CAS once tRCD elapsed.
        assert cycle == DDR_TEST.t_rcd

    def test_row_conflict_precharges_first(self):
        sched, banks = make_sched()
        sched.enqueue(access(row=1, uid=1))
        _, _ = self.run_until_cas(sched)
        sched.retire_head()
        sched.enqueue(access(row=2, uid=2))
        commands = []
        for _ in range(40):
            decision = sched.decide(refresh_forced=False, data_path_free=True)
            sched.tick()
            commands.append(decision.command)
            if decision.command in (DdrCommand.READ, DdrCommand.WRITE):
                break
        assert DdrCommand.PRECHARGE in commands

    def test_interleaved_activation_of_second_bank(self):
        sched, banks = make_sched()
        sched.enqueue(access(bank=0, uid=1))
        sched.enqueue(access(bank=1, uid=2))
        # Wait for bank 0's CAS; bank 1's ACT should already have issued
        # (row open for the pipelined next access = bank interleaving).
        self.run_until_cas(sched)
        assert banks[1].state in (BankState.ACTIVATING, BankState.ACTIVE)

    def test_busy_bank_not_precharged(self):
        sched, banks = make_sched()
        sched.enqueue(access(bank=0, row=1, uid=1))
        self.run_until_cas(sched)
        # Conflicting access to the same bank while bank 0 streams.
        sched.enqueue(access(bank=0, row=2, uid=2))
        for _ in range(DDR_TEST.t_ras + 2):
            decision = sched.decide(
                refresh_forced=False, data_path_free=False, busy_bank=0
            )
            sched.tick()
            assert decision.command is not DdrCommand.PRECHARGE

    def test_refresh_forces_drain_and_refresh(self):
        sched, banks = make_sched()
        sched.enqueue(access(uid=1))
        self.run_until_cas(sched)
        sched.retire_head()
        saw_refresh = False
        for _ in range(60):
            decision = sched.decide(refresh_forced=True, data_path_free=True)
            sched.tick()
            if decision.command is DdrCommand.REFRESH:
                saw_refresh = True
                break
            assert decision.command in (
                DdrCommand.PRECHARGE,
                DdrCommand.NOP,
            )
        assert saw_refresh

    def test_retire_empty_raises(self):
        sched, _ = make_sched()
        with pytest.raises(SimulationError):
            sched.retire_head()
