"""Unit-level tests for RTL building blocks: signals, mux, arbiter."""

import pytest

from repro.ahb.types import HTrans
from repro.core.config import AhbPlusConfig
from repro.core.platform import config_for_workload
from repro.kernel.cycle import CycleEngine
from repro.rtl import build_rtl_platform
from repro.rtl.mux import BusMux
from repro.rtl.signals import (
    BiSignals,
    MasterSignals,
    NO_OWNER,
    SharedBusSignals,
    all_signals,
)
from repro.traffic import table1_pattern_a, table1_pattern_c

from dataclasses import replace


class TestSignalBundles:
    def test_master_bundle_names(self):
        sigs = MasterSignals(2)
        names = {s.name for s in sigs.signals()}
        assert "m2.hbusreq" in names and "m2.hwdata" in names

    def test_shared_bus_defaults(self):
        bus = SharedBusSignals()
        assert bus.hready.value == 1
        assert bus.addr_owner.value == NO_OWNER
        assert bus.htrans.value == int(HTrans.IDLE)

    def test_all_signals_flattens_everything(self):
        masters = [MasterSignals(i) for i in range(2)]
        bus = SharedBusSignals()
        bi = BiSignals()
        flat = all_signals(masters, bus, bi)
        expected = sum(len(list(b.signals())) for b in [*masters, bus, bi])
        assert len(flat) == expected

    def test_bus_width_parameterised(self):
        bus = SharedBusSignals(bus_width_bits=64)
        assert bus.hwdata.width == 64 and bus.hrdata.width == 64


class TestBusMux:
    def _mux_setup(self):
        engine = CycleEngine()
        masters = [MasterSignals(i) for i in range(2)]
        bus = SharedBusSignals()
        mux = BusMux(masters, bus, engine)
        return engine, masters, bus, mux

    def test_routes_address_phase_driver(self):
        _, masters, bus, mux = self._mux_setup()
        masters[1].htrans.drive(int(HTrans.NONSEQ))
        masters[1].haddr.drive(0x1234)
        masters[1].hwrite.drive(1)
        mux.evaluate()
        assert bus.htrans.value == int(HTrans.NONSEQ)
        assert bus.haddr.value == 0x1234
        assert bus.addr_owner.value == 1

    def test_idle_when_nobody_drives(self):
        _, _, bus, mux = self._mux_setup()
        mux.evaluate()
        assert bus.htrans.value == int(HTrans.IDLE)
        assert bus.addr_owner.value == NO_OWNER

    def test_write_data_follows_stream_owner(self):
        _, masters, bus, mux = self._mux_setup()
        masters[0].hwdata.drive(0xAA)
        masters[1].hwdata.drive(0xBB)
        bus.stream_owner.drive(1)
        mux.evaluate()
        assert bus.hwdata.value == 0xBB


class TestRtlArbiterBehaviour:
    def test_only_one_grant_ever(self):
        platform = build_rtl_platform(table1_pattern_a(20))
        grants_per_cycle = []

        def watch(cycle):
            granted = sum(
                m.sig.hgrant.value for m in platform.masters
            ) + platform.buffer_master.sig.hgrant.value
            grants_per_cycle.append(granted)

        platform.engine.add_cycle_hook(watch)
        platform.run()
        assert max(grants_per_cycle) <= 1

    def test_filter_sharing_with_tlm(self):
        # RTL arbiter uses the same filter classes as the TLM engines.
        platform = build_rtl_platform(table1_pattern_c(10))
        names = [f.name for f in platform.arbiter.decision.filters]
        assert names == [
            "request",
            "hazard",
            "urgency",
            "real-time",
            "pressure",
            "bank",
            "tie-break",
        ]

    def test_disabled_filters_propagate_to_rtl(self):
        workload = table1_pattern_a(10)
        cfg = replace(
            config_for_workload(workload), disabled_filters=("bank",)
        )
        platform = build_rtl_platform(workload, config=cfg)
        assert not platform.arbiter.decision.filter_by_name("bank").enabled

    def test_grants_issued_counted(self):
        platform = build_rtl_platform(table1_pattern_a(15))
        platform.run()
        assert platform.arbiter.grants_issued > 0
