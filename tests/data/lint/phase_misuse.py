"""Seeded NET-PHASE violations: drives from the wrong phase.

``bad_comb`` issues a registered drive from the evaluate phase (the
value skews a clock edge late and dodges the settle loop);
``bad_seq`` issues a combinational drive from the update phase
(bypassing two-phase semantics entirely).
"""

from repro.kernel.cycle import CycleEngine
from repro.kernel.signal import make_signal


class PhaseMixer:
    def __init__(self) -> None:
        self.inp = make_signal("fix.inp", width=8)
        self.reg_out = make_signal("fix.reg_out", width=8)
        self.comb_out = make_signal("fix.comb_out", width=8)

    def bad_comb(self) -> None:
        self.reg_out.drive_next(self.inp.value)  # registered drive in evaluate

    def bad_seq(self) -> None:
        self.comb_out.drive(self.inp.value)  # combinational drive in update

    def update(self) -> None:
        _ = self.reg_out.value
        _ = self.comb_out.value


def build() -> CycleEngine:
    engine = CycleEngine(name="fixture:phase-misuse")
    comp = PhaseMixer()
    engine.add_combinational(comp.bad_comb, sensitive_to=[comp.inp])
    engine.add_sequential(comp.bad_seq, wake_on=[comp.inp])
    engine.add_sequential(
        comp.update, wake_on=[comp.reg_out, comp.comb_out]
    )
    return engine
