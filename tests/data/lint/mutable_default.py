"""Seeded DET-MUTDEF violation: a list default shared across calls."""


def accumulate(item: int, into: list = []) -> list:
    into.append(item)
    return into
