"""Seeded NET-LOOP violation: combinational feedback between two procs.

``forward`` drives ``b`` from ``a`` and ``backward`` drives ``a`` from
``b``; the settle loop would oscillate until the iteration bound trips.
The lint rule finds the cycle in the sensitivity graph without running
a single evaluate pass.
"""

from repro.kernel.cycle import CycleEngine
from repro.kernel.signal import make_signal


class Feedback:
    def __init__(self) -> None:
        self.a = make_signal("fix.a", width=8)
        self.b = make_signal("fix.b", width=8)

    def forward(self) -> None:
        self.b.drive((self.a.value + 1) & 0xFF)

    def backward(self) -> None:
        self.a.drive((self.b.value + 1) & 0xFF)

    def update(self) -> None:
        _ = self.a.value


def build() -> CycleEngine:
    engine = CycleEngine(name="fixture:comb-loop")
    comp = Feedback()
    engine.add_combinational(comp.forward, sensitive_to=[comp.a])
    engine.add_combinational(comp.backward, sensitive_to=[comp.b])
    engine.add_sequential(comp.update, wake_on=[comp.a, comp.b])
    return engine
