"""Seeded NET-SENS violation: a comb process with an incomplete list.

``Adder.evaluate`` reads both operands but only declares ``a`` —
event-driven evaluation would miss every change that arrives on ``b``.
"""

from repro.kernel.cycle import CycleEngine
from repro.kernel.signal import make_signal


class Adder:
    def __init__(self) -> None:
        self.a = make_signal("fix.a", width=8)
        self.b = make_signal("fix.b", width=8)
        self.out = make_signal("fix.out", width=8)

    def evaluate(self) -> None:
        self.out.drive((self.a.value + self.b.value) & 0xFF)


class Consumer:
    def __init__(self, adder: Adder) -> None:
        self.adder = adder
        self.copy = make_signal("fix.copy", width=8)

    def evaluate(self) -> None:
        self.copy.drive(self.adder.out.value)

    def update(self) -> None:
        pass


def build() -> CycleEngine:
    engine = CycleEngine(name="fixture:missing-sensitivity")
    adder = Adder()
    consumer = Consumer(adder)
    engine.add_combinational(adder.evaluate, sensitive_to=[adder.a])  # b missing
    engine.add_combinational(
        consumer.evaluate, sensitive_to=[adder.out]
    )
    # the copy output is observed by the harness, not the netlist
    engine.add_sequential(consumer.update, wake_on=[consumer.copy])
    return engine
