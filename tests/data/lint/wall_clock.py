"""Seeded DET-TIME violations: wall-clock reads in sim scope."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # wall clock


def label() -> str:
    return datetime.now().isoformat()  # wall clock
