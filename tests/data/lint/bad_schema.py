"""Seeded DET-SCHEMA violations: unregistered tags, missing round-trip."""

from repro.canonical import stable_hash

MY_SCHEMA = "ahbplus-rogue-v1"  # bare constant, never registered


def key_of(payload: dict) -> str:
    return stable_hash(payload, "ahbplus-inline-v1")  # literal tag


class KeyedThing:
    def __init__(self, name: str) -> None:
        self.name = name

    def content_key(self) -> str:
        return stable_hash({"name": self.name}, MY_SCHEMA)

    # no to_dict / from_dict: the key cannot round-trip
