"""Seeded DET-RAND violations: module-global RNG use in sim scope."""

import random


def jitter_delay() -> float:
    return random.uniform(0.0, 1.0)  # shared module-global RNG


def make_rng():
    return random.Random()  # unseeded: draws OS entropy
