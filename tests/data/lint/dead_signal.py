"""Seeded NET-DEAD violation: a driven signal nobody consumes.

``debug_tap`` is faithfully driven every cycle but appears in no
sensitivity list, no wake list, and no external observer — a modelling
leftover that costs commits for nothing.
"""

from repro.kernel.cycle import CycleEngine
from repro.kernel.signal import make_signal


class Producer:
    def __init__(self) -> None:
        self.inp = make_signal("fix.inp", width=8)
        self.out = make_signal("fix.out", width=8)
        self.debug_tap = make_signal("fix.debug_tap", width=8)

    def update(self) -> None:
        value = self.inp.value
        self.out.drive_next(value)
        self.debug_tap.drive_next(value ^ 0xFF)  # nobody reads this


class Sink:
    def __init__(self, producer: Producer) -> None:
        self.producer = producer

    def update(self) -> None:
        _ = self.producer.out.value


def build() -> CycleEngine:
    engine = CycleEngine(name="fixture:dead-signal")
    producer = Producer()
    sink = Sink(producer)
    engine.add_sequential(producer.update, wake_on=[producer.inp])
    engine.add_sequential(sink.update, wake_on=[producer.out])
    return engine
