"""Seeded DET-PICKLE violations: collectors the pool cannot pickle."""


def sweep_with_lambda(runner, grid):
    return runner.run(grid, collect=lambda point, platform, result: {})


def sweep_with_nested(runner, grid):
    def gather(point, platform, result):
        return {"cycles": result.cycles}

    return runner.run(grid, collect=gather)
