"""Seeded NET-MULTI violation: two comb processes drive one signal.

Whichever evaluates last wins — an elaboration-order accident, not a
modelled priority.
"""

from repro.kernel.cycle import CycleEngine
from repro.kernel.signal import make_signal


class Contenders:
    def __init__(self) -> None:
        self.sel = make_signal("fix.sel", width=1)
        self.shared = make_signal("fix.shared", width=8)

    def driver_a(self) -> None:
        self.shared.drive(0x11 if self.sel.value else 0x22)

    def driver_b(self) -> None:
        self.shared.drive(0x33)

    def update(self) -> None:
        _ = self.shared.value


def build() -> CycleEngine:
    engine = CycleEngine(name="fixture:multi-driver")
    comp = Contenders()
    engine.add_combinational(comp.driver_a, sensitive_to=[comp.sel])
    engine.add_combinational(comp.driver_b, sensitive_to=[comp.sel])
    engine.add_sequential(comp.update, wake_on=[comp.shared])
    return engine
