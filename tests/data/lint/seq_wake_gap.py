"""Seeded NET-WAKE violation: update() reads outside its wake contract.

``Counter.update`` samples ``enable`` unguarded, but ``wake_on`` only
lists ``load`` — an idle handle would sleep straight through enable
edges, diverging from the full-sweep reference.
"""

from repro.kernel.cycle import CycleEngine
from repro.kernel.signal import make_signal


class Counter:
    def __init__(self) -> None:
        self.load = make_signal("fix.load", width=1)
        self.enable = make_signal("fix.enable", width=1)
        self.count = make_signal("fix.count", width=8)
        self.value = 0

    def update(self) -> None:
        if self.enable.value:  # read not covered by wake_on
            self.value = (self.value + 1) & 0xFF
        self.count.drive_next(self.value)


class Watcher:
    def __init__(self, counter: Counter) -> None:
        self.counter = counter

    def update(self) -> None:
        _ = self.counter.count.value


def build() -> CycleEngine:
    engine = CycleEngine(name="fixture:seq-wake-gap")
    counter = Counter()
    watcher = Watcher(counter)
    engine.add_sequential(counter.update, wake_on=[counter.load])
    engine.add_sequential(watcher.update, wake_on=[counter.count])
    return engine
