"""Acceptance fixture: a scratch BusMux copy missing one sens entry.

This is a line-for-line copy of ``repro.rtl.mux.BusMux``'s address path
with exactly one edit: ``bundle.hfault`` deleted from the sensitivity
list, while ``evaluate_address`` still reads ``driver.hfault.value``.
The analyzer must catch the deletion purely statically — no workload,
zero cycles — which is the "prove the contract instead of trusting it"
acceptance bar of the lint subsystem.
"""

from typing import List

from repro.ahb.types import HTrans
from repro.kernel.cycle import CycleEngine
from repro.rtl.signals import NO_OWNER, MasterSignals, SharedBusSignals


class ScratchBusMux:
    """BusMux address path with hfault dropped from sensitive_to."""

    def __init__(
        self,
        master_signals: List[MasterSignals],
        bus: SharedBusSignals,
        engine: CycleEngine,
    ) -> None:
        self.master_signals = master_signals
        self.bus = bus
        addr_sens = []
        for bundle in master_signals:
            addr_sens.extend(
                (
                    bundle.htrans,
                    bundle.haddr,
                    bundle.hwrite,
                    bundle.hburst,
                    bundle.hlen,
                    bundle.hsize,
                    # bundle.hfault deliberately missing
                )
            )
        engine.add_combinational(self.evaluate_address, sensitive_to=addr_sens)

    def evaluate_address(self) -> None:
        driver = None
        for bundle in self.master_signals:
            if bundle.htrans.value == int(HTrans.NONSEQ):
                driver = bundle
                break
        if driver is not None:
            self.bus.htrans.drive(int(HTrans.NONSEQ))
            self.bus.haddr.drive(driver.haddr.value)
            self.bus.hwrite.drive(driver.hwrite.value)
            self.bus.hburst.drive(driver.hburst.value)
            self.bus.hlen.drive(driver.hlen.value)
            self.bus.hsize.drive(driver.hsize.value)
            self.bus.hfault.drive(driver.hfault.value)
            self.bus.addr_owner.drive(driver.index)
        else:
            self.bus.htrans.drive(int(HTrans.IDLE))
            self.bus.hfault.drive(0)
            self.bus.addr_owner.drive(NO_OWNER)


class BusProbe:
    """Declares the mux outputs so the fixture stays NET-DEAD-clean."""

    def __init__(self, bus: SharedBusSignals) -> None:
        self.bus = bus

    def update(self) -> None:
        _ = self.bus.htrans.value


def build() -> CycleEngine:
    engine = CycleEngine(name="fixture:mux-missing-hfault")
    masters = [MasterSignals(0), MasterSignals(1)]
    bus = SharedBusSignals()
    mux = ScratchBusMux(masters, bus, engine)
    probe = BusProbe(bus)
    engine.add_sequential(
        probe.update,
        wake_on=[
            bus.htrans,
            bus.haddr,
            bus.hwrite,
            bus.hburst,
            bus.hlen,
            bus.hsize,
            bus.hfault,
            bus.addr_owner,
        ],
    )
    return engine
