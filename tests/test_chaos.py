"""Tier-1 smoke of the chaos harness (``make chaos`` in miniature).

Two seeded campaigns against real server subprocesses: each SIGKILLs a
daemon mid-batch (possibly twice, possibly tearing a file tail in
between), restarts it on the same store+journal, harasses the survivor
with dropped connections / poison points / a drain, then asserts the
supervision guarantees — no accepted work lost, nothing simulated
twice, recovered records bit-identical to an uninterrupted run, no
file corruption beyond the injected torn tails.  ``make chaos`` runs
the same harness over 25 seeds; ``make chaos-long`` over 100 heavier
ones.
"""

import pytest

from repro.fuzz import ChaosHarness
from repro.fuzz.chaos import main as chaos_main


class TestChaosSmoke:
    def test_campaigns_hold_all_guarantees(self):
        harness = ChaosHarness(transactions=(1200, 2000))
        report = harness.run(range(2))
        detail = "\n".join(f.describe() for f in report.failures)
        assert report.clean, f"chaos guarantees violated:\n{detail}"
        assert report.campaigns == 2
        assert report.kills >= 2  # every campaign opens with a SIGKILL

    def test_cli_exit_status_is_the_verdict(self, capsys):
        exit_code = chaos_main(
            ["--count", "1", "--transactions", "800", "1200", "--quiet"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "all guarantees held" in out


class TestHarnessPieces:
    def test_baseline_is_keyed_like_the_store(self):
        from repro.exec import point_key

        harness = ChaosHarness()
        from random import Random

        grid = harness._grid(Random(7))
        baseline = harness._baseline(grid)
        for point in grid:
            key = point_key(point.spec, engine=point.engine, max_cycles=None)
            assert key in baseline
            assert not baseline[key].failed

    def test_poison_grid_deterministically_crashes(self):
        from repro.exec import SweepRunner
        from repro.fuzz.chaos import POISON_MAX_CYCLES

        grid = ChaosHarness._poison_grid()
        runner = SweepRunner(backend="serial", on_error="record")
        first = runner.run(list(grid), max_cycles=POISON_MAX_CYCLES)
        second = runner.run(list(grid), max_cycles=POISON_MAX_CYCLES)
        assert all(record.failed for record in first)
        assert [r.error for r in first] == [r.error for r in second]

    def test_threshold_must_exceed_kill_rounds(self):
        # The harness's own SIGKILLs count as interrupted starts; a
        # threshold at or below the kill-round cap (2) would let them
        # quarantine an innocent point.
        assert ChaosHarness().quarantine_threshold > 2
